#include "contrastive/losses.h"

#include "common/status.h"

namespace sudowoodo::contrastive {

namespace ts = sudowoodo::tensor;

Tensor NtXentLoss(const Tensor& z_ori, const Tensor& z_aug, float tau) {
  SUDO_CHECK(z_ori.rows() == z_aug.rows() && z_ori.cols() == z_aug.cols());
  SUDO_CHECK(tau > 0.0f);
  const int n = z_ori.rows();
  SUDO_CHECK(n >= 2);

  // Z = [Z_ori; Z_aug], rows L2-normalized so the similarity is cosine.
  Tensor z = ts::L2NormalizeRows(ts::ConcatRows({z_ori, z_aug}));
  // Pairwise similarities scaled by temperature (fused Z*Z^T).
  Tensor sim = ts::Scale(ts::MatMulBT(z, z), 1.0f / tau);
  // Mask self-similarity (the 1[k != i] in Eq. 1's denominator).
  Tensor mask = Tensor::Zeros(2 * n, 2 * n);
  for (int i = 0; i < 2 * n; ++i) mask.set(i, i, -1e9f);
  Tensor logits = ts::Add(sim, mask);

  // ℓ(k, k+N) and ℓ(k+N, k) for every k, averaged (Eq. 2).
  std::vector<int> targets(static_cast<size_t>(2 * n));
  for (int i = 0; i < n; ++i) {
    targets[static_cast<size_t>(i)] = i + n;
    targets[static_cast<size_t>(i + n)] = i;
  }
  return ts::PickNegLogLikelihood(ts::LogRowSoftmax(logits), targets);
}

Tensor BarlowTwinsObjective(const Tensor& z_ori, const Tensor& z_aug,
                            float lambda) {
  SUDO_CHECK(z_ori.rows() == z_aug.rows() && z_ori.cols() == z_aug.cols());
  const int n = z_ori.rows();
  SUDO_CHECK(n >= 2);
  // Column standardization makes C_ij exactly the per-feature cosine of
  // Eq. 4 computed on centered features.
  Tensor zo = ts::StandardizeCols(z_ori);
  Tensor za = ts::StandardizeCols(z_aug);
  Tensor c = ts::Scale(ts::MatMulAT(zo, za), 1.0f / static_cast<float>(n));
  return ts::BarlowTwinsLoss(c, lambda);
}

Tensor CombinedLoss(const Tensor& z_ori, const Tensor& z_aug, float tau,
                    float lambda, float alpha) {
  SUDO_CHECK(alpha >= 0.0f && alpha <= 1.0f);
  Tensor contrast = NtXentLoss(z_ori, z_aug, tau);
  if (alpha == 0.0f) return contrast;
  Tensor bt = BarlowTwinsObjective(z_ori, z_aug, lambda);
  return ts::Add(ts::Scale(contrast, 1.0f - alpha), ts::Scale(bt, alpha));
}

}  // namespace sudowoodo::contrastive
