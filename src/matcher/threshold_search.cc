#include "matcher/threshold_search.h"

#include <algorithm>

namespace sudowoodo::matcher {

ThresholdSearchResult HillClimbPositiveRatio(
    const std::vector<ScoredPair>& scored, const PseudoLabelOptions& base,
    const std::function<double(const PseudoLabelResult&)>& trial,
    const ThresholdSearchOptions& options) {
  ThresholdSearchResult result;
  auto run_trial = [&](double ratio) {
    PseudoLabelOptions o = base;
    o.pos_ratio = std::clamp(ratio, 0.01, 0.5);
    const double score = trial(GeneratePseudoLabels(scored, o));
    ++result.trials_run;
    result.history.emplace_back(o.pos_ratio, score);
    return score;
  };

  double cur_ratio = base.pos_ratio;
  double cur_score = run_trial(cur_ratio);
  result.best_pos_ratio = cur_ratio;
  result.best_score = cur_score;

  // Greedy climb: try up, then down, keep moving while improving.
  double direction = options.step;
  while (result.trials_run < options.max_trials) {
    const double next_ratio = cur_ratio * direction;
    const double next_score = run_trial(next_ratio);
    if (next_score > cur_score) {
      cur_ratio = next_ratio;
      cur_score = next_score;
      if (cur_score > result.best_score) {
        result.best_score = cur_score;
        result.best_pos_ratio = cur_ratio;
      }
    } else if (direction > 1.0) {
      direction = 1.0 / options.step;  // reverse once, then stop on failure
    } else {
      break;
    }
  }
  return result;
}

}  // namespace sudowoodo::matcher
