// Pseudo labeling (paper §III-C): extracts high-confidence match/non-match
// labels from the pre-trained embedding space to augment a small manually
// labeled set. Candidate pairs above θ+ in embedding cosine become
// positives, pairs below θ− become negatives. Thresholds are tuned
// semi-automatically from a user-supplied positive-ratio prior ρ: fixing
// |C+| / (|C+| + |C−|) = ρ leaves one free threshold, found by ranking.

#ifndef SUDOWOODO_MATCHER_PSEUDO_LABEL_H_
#define SUDOWOODO_MATCHER_PSEUDO_LABEL_H_

#include <vector>

#include "common/status.h"

namespace sudowoodo::matcher {

/// A blocking-produced candidate pair scored by embedding cosine.
struct ScoredPair {
  int a_idx = 0;
  int b_idx = 0;
  float cosine = 0.0f;
};

/// Options; defaults follow the paper (ρ from {5%, 10%, ...}, multiplier 8
/// meaning "adding 7x extra labels works the best", §VI-B).
struct PseudoLabelOptions {
  double pos_ratio = 0.10;
  /// Target pseudo-label count = (multiplier - 1) * base_label_count.
  int multiplier = 8;
  int base_label_count = 500;
};

/// A pseudo-labeled pair.
struct PseudoLabel {
  int a_idx = 0;
  int b_idx = 0;
  int label = 0;
  float cosine = 0.0f;
};

/// Result of threshold calibration + labeling.
struct PseudoLabelResult {
  std::vector<PseudoLabel> labels;
  double theta_pos = 1.0;
  double theta_neg = -1.0;
  int n_pos = 0;
  int n_neg = 0;
};

/// Generates pseudo labels from scored candidates. The total label budget
/// is (multiplier - 1) * base_label_count, with n_pos = ρ * budget drawn
/// from the top of the cosine ranking (θ+ = lowest admitted similarity)
/// and the rest from the bottom (θ− = highest admitted similarity).
PseudoLabelResult GeneratePseudoLabels(const std::vector<ScoredPair>& scored,
                                       const PseudoLabelOptions& options);

}  // namespace sudowoodo::matcher

#endif  // SUDOWOODO_MATCHER_PSEUDO_LABEL_H_
