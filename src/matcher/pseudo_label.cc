#include "matcher/pseudo_label.h"

#include <algorithm>

namespace sudowoodo::matcher {

PseudoLabelResult GeneratePseudoLabels(const std::vector<ScoredPair>& scored,
                                       const PseudoLabelOptions& options) {
  PseudoLabelResult out;
  if (scored.empty()) return out;

  std::vector<ScoredPair> ranked = scored;
  std::sort(ranked.begin(), ranked.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              return a.cosine > b.cosine;
            });

  const int budget =
      std::max(0, (options.multiplier - 1) * options.base_label_count);
  const int total = std::min<int>(budget, static_cast<int>(ranked.size()));
  if (total == 0) return out;
  // ρ fixes the split: |C+| / (|C+| + |C−|) = pos_ratio (§III-C).
  int n_pos = static_cast<int>(total * options.pos_ratio + 0.5);
  n_pos = std::max(1, std::min(n_pos, total - 1));
  const int n_neg = total - n_pos;

  for (int i = 0; i < n_pos; ++i) {
    const auto& p = ranked[static_cast<size_t>(i)];
    out.labels.push_back({p.a_idx, p.b_idx, 1, p.cosine});
  }
  out.theta_pos = ranked[static_cast<size_t>(n_pos - 1)].cosine;

  const int n = static_cast<int>(ranked.size());
  for (int i = 0; i < n_neg; ++i) {
    const auto& p = ranked[static_cast<size_t>(n - 1 - i)];
    out.labels.push_back({p.a_idx, p.b_idx, 0, p.cosine});
  }
  out.theta_neg = ranked[static_cast<size_t>(n - n_neg)].cosine;
  out.n_pos = n_pos;
  out.n_neg = n_neg;
  return out;
}

}  // namespace sudowoodo::matcher
