#include "matcher/pair_matcher.h"

#include "common/timer.h"
#include "nn/optimizer.h"
#include "nn/weights.h"
#include "pipeline/metrics.h"
#include "text/serialize.h"

namespace sudowoodo::matcher {

namespace ts = sudowoodo::tensor;

PairMatcher::PairMatcher(nn::Encoder* encoder, const text::Vocab* vocab,
                         const FinetuneOptions& options)
    : encoder_(encoder), vocab_(vocab), options_(options) {
  SUDO_CHECK(encoder != nullptr && vocab != nullptr);
  Rng rng(options.seed);
  const int in_dim =
      (options.sudowoodo_head ? 2 * encoder->dim() : encoder->dim()) +
      options.side_dim;
  if (options.mlp_head) {
    mlp_head_ = nn::Mlp(in_dim, in_dim / 2, 2, &rng);
  } else {
    head_ = nn::Linear(in_dim, 2, &rng);
  }
}

ts::Tensor PairMatcher::Classify(const ts::Tensor& features) const {
  return options_.mlp_head ? mlp_head_.Forward(features)
                           : head_.Forward(features);
}

ts::Tensor PairMatcher::ForwardBatch(
    const std::vector<const PairExample*>& batch, bool training) {
  std::vector<std::vector<int>> xy_ids;
  xy_ids.reserve(batch.size());
  for (const PairExample* ex : batch) {
    xy_ids.push_back(
        vocab_->Encode(text::SerializePairTokens(ex->x, ex->y)));
  }
  ts::Tensor z_xy = encoder_->EncodeBatch(xy_ids, nullptr, training);

  // Optional constant side-feature block.
  ts::Tensor side;
  if (options_.side_dim > 0) {
    side = ts::Tensor::Zeros(static_cast<int>(batch.size()),
                             options_.side_dim);
    for (size_t i = 0; i < batch.size(); ++i) {
      SUDO_CHECK(static_cast<int>(batch[i]->side.size()) ==
                 options_.side_dim);
      for (int j = 0; j < options_.side_dim; ++j) {
        side.set(static_cast<int>(i), j,
                 batch[i]->side[static_cast<size_t>(j)]);
      }
    }
  }

  if (!options_.sudowoodo_head) {
    if (options_.side_dim > 0) {
      return Classify(ts::ConcatCols({z_xy, side}));
    }
    return Classify(z_xy);
  }
  std::vector<std::vector<int>> x_ids, y_ids;
  x_ids.reserve(batch.size());
  y_ids.reserve(batch.size());
  for (const PairExample* ex : batch) {
    x_ids.push_back(vocab_->Encode(ex->x));
    y_ids.push_back(vocab_->Encode(ex->y));
  }
  ts::Tensor z_x = encoder_->EncodeBatch(x_ids, nullptr, training);
  ts::Tensor z_y = encoder_->EncodeBatch(y_ids, nullptr, training);
  // Z_xy ⊕ |Z_x - Z_y|   (Eq. 3), plus side features when configured.
  std::vector<ts::Tensor> parts = {z_xy, ts::Abs(ts::Sub(z_x, z_y))};
  if (options_.side_dim > 0) parts.push_back(side);
  return Classify(ts::ConcatCols(parts));
}

Status PairMatcher::Train(const std::vector<PairExample>& train,
                          const std::vector<PairExample>& valid) {
  if (train.empty()) return Status::InvalidArgument("empty training set");
  WallTimer timer;
  Rng rng(options_.seed + 1);

  std::vector<ts::Tensor> params;
  if (!options_.freeze_encoder) params = encoder_->Parameters();
  nn::AppendParameters(&params, options_.mlp_head ? mlp_head_.Parameters()
                                                  : head_.Parameters());
  nn::AdamWOptions opt_options;
  opt_options.lr = options_.lr;
  nn::AdamW optimizer(params, opt_options);

  nn::WeightSnapshot best;
  best_valid_f1_ = -1.0;

  std::vector<int> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  int steps = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    if (options_.max_steps > 0 && steps >= options_.max_steps) break;
    rng.Shuffle(&order);
    for (size_t b = 0; b < order.size();
         b += static_cast<size_t>(options_.batch_size)) {
      if (options_.max_steps > 0 && steps >= options_.max_steps) break;
      ++steps;
      const size_t end =
          std::min(order.size(), b + static_cast<size_t>(options_.batch_size));
      std::vector<const PairExample*> batch;
      std::vector<int> labels;
      for (size_t i = b; i < end; ++i) {
        batch.push_back(&train[static_cast<size_t>(order[i])]);
        labels.push_back(train[static_cast<size_t>(order[i])].label);
      }
      ts::Tensor logits = ForwardBatch(batch, /*training=*/true);
      ts::Tensor loss = ts::CrossEntropyWithLogits(logits, labels);
      optimizer.ZeroGrad();
      ts::Backward(loss);
      optimizer.ClipGradNorm(options_.grad_clip);
      optimizer.Step();
    }
    if (options_.select_best_epoch && !valid.empty()) {
      std::vector<int> preds = Predict(valid);
      std::vector<int> labels;
      labels.reserve(valid.size());
      for (const auto& ex : valid) labels.push_back(ex.label);
      const double f1 = pipeline::ComputePRF1(preds, labels).f1;
      if (f1 > best_valid_f1_) {
        best_valid_f1_ = f1;
        best = nn::SnapshotWeights(params);
      }
    }
  }
  if (options_.select_best_epoch && !best.empty()) {
    nn::RestoreWeights(params, best);
  }
  train_seconds_ = timer.ElapsedSeconds();
  return Status::OK();
}

std::vector<float> PairMatcher::PredictProba(
    const std::vector<PairExample>& pairs) {
  ts::NoGradGuard ng;
  std::vector<float> out;
  out.reserve(pairs.size());
  const size_t bs = static_cast<size_t>(options_.batch_size);
  for (size_t b = 0; b < pairs.size(); b += bs) {
    const size_t end = std::min(pairs.size(), b + bs);
    std::vector<const PairExample*> batch;
    for (size_t i = b; i < end; ++i) batch.push_back(&pairs[i]);
    ts::Tensor logits = ForwardBatch(batch, /*training=*/false);
    ts::Tensor probs = ts::RowSoftmax(logits);
    for (int i = 0; i < probs.rows(); ++i) out.push_back(probs.at(i, 1));
  }
  return out;
}

std::vector<int> PairMatcher::Predict(const std::vector<PairExample>& pairs) {
  std::vector<float> probs = PredictProba(pairs);
  std::vector<int> out(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) out[i] = probs[i] >= 0.5f ? 1 : 0;
  return out;
}

}  // namespace sudowoodo::matcher
