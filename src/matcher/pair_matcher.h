// Pairwise matching model M_pm with Sudowoodo's similarity-aware
// fine-tuning architecture (§III-B, Fig. 4, Eq. 3):
//
//   M_pm(x, y) = softmax( Linear_diff( Z_xy ⊕ |Z_x - Z_y| ) )
//
// where Z_x, Z_y are the encoder outputs for the individual items and Z_xy
// the output for the concatenated pair. Setting `sudowoodo_head = false`
// falls back to the default LM fine-tuning (classify Z_xy only), which is
// both the Ditto baseline's architecture and the "default fine-tuning
// option" the paper argues is not ideal (§III-B).

#ifndef SUDOWOODO_MATCHER_PAIR_MATCHER_H_
#define SUDOWOODO_MATCHER_PAIR_MATCHER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/encoder.h"
#include "nn/layers.h"
#include "text/vocab.h"

namespace sudowoodo::matcher {

/// One training/inference pair: serialized token streams plus a label.
/// `side` optionally carries dense per-pair features appended to the
/// Eq. 3 feature vector before the classification head (all examples of a
/// run must agree on its size; see FinetuneOptions::side_dim).
struct PairExample {
  std::vector<std::string> x;
  std::vector<std::string> y;
  int label = 0;
  std::vector<float> side;
};

/// Fine-tuning hyper-parameters (paper §VI-A2, scaled to the mini-LM).
struct FinetuneOptions {
  int epochs = 12;           // paper: 50
  int batch_size = 16;
  float lr = 1e-3f;
  bool sudowoodo_head = true;  // Eq. 3 vs plain concatenation head
  float grad_clip = 5.0f;
  /// Keep the weights of the epoch with the best validation F1 (§VI-A2).
  bool select_best_epoch = true;
  /// Width of PairExample::side. When > 0 the head input becomes
  /// [Z_xy ⊕ |Z_x - Z_y| ⊕ side]. Used by the cleaning pipeline to feed
  /// profiling signals alongside the learned representations (DESIGN.md
  /// §1.2 documents this substitution for large-LM knowledge).
  int side_dim = 0;
  /// Train only the classification head, using the pre-trained encoder
  /// as a frozen feature extractor (Definition 1's "directly used"
  /// representations). Prevents the encoder from memorizing tiny
  /// fine-tuning sets whose eval distribution contains unseen values.
  bool freeze_encoder = false;
  /// Use a 2-layer MLP classification head instead of the single linear
  /// layer of Eq. 3. The cleaning pipeline needs the extra capacity to
  /// combine profiling side features (feature interactions a linear head
  /// cannot express); EM keeps the paper's linear head.
  bool mlp_head = false;
  /// Upper bound on optimizer steps; 0 = unlimited. The paper fixes the
  /// number of fine-tuning steps when pseudo labels enlarge the training
  /// set ("We fix the size of the fine-tuning steps unchanged when adding
  /// the extra labels", §VI-B); the pipeline uses this knob for that.
  int max_steps = 0;
  uint64_t seed = 131;
};

/// Trains and applies the pairwise matching model on top of a (typically
/// pre-trained) encoder. The encoder is fine-tuned in place.
class PairMatcher {
 public:
  PairMatcher(nn::Encoder* encoder, const text::Vocab* vocab,
              const FinetuneOptions& options);

  /// Fine-tunes on `train`; when `valid` is non-empty and best-epoch
  /// selection is on, restores the best-validation-F1 weights at the end.
  Status Train(const std::vector<PairExample>& train,
               const std::vector<PairExample>& valid);

  /// P(match) for each pair.
  std::vector<float> PredictProba(const std::vector<PairExample>& pairs);

  /// Hard 0/1 predictions at threshold 0.5.
  std::vector<int> Predict(const std::vector<PairExample>& pairs);

  double best_valid_f1() const { return best_valid_f1_; }
  double train_seconds() const { return train_seconds_; }

 private:
  /// Logits [batch, 2] for a slice of examples.
  tensor::Tensor ForwardBatch(const std::vector<const PairExample*>& batch,
                              bool training);
  /// Applies the configured classification head.
  tensor::Tensor Classify(const tensor::Tensor& features) const;

  nn::Encoder* encoder_;
  const text::Vocab* vocab_;
  FinetuneOptions options_;
  nn::Linear head_;
  nn::Mlp mlp_head_;
  double best_valid_f1_ = 0.0;
  double train_seconds_ = 0.0;
};

}  // namespace sudowoodo::matcher

#endif  // SUDOWOODO_MATCHER_PAIR_MATCHER_H_
