// Hill-climbing refinement of the pseudo-label positive threshold
// (paper §III-C): "We then take a hill-climbing heuristics to find a
// locally optimal θ+ using a fixed number of fine-tuning trials."
//
// The ρ-constraint of GeneratePseudoLabels fixes one degree of freedom;
// this module searches the remaining one - the effective positive count
// around the ρ-implied value - by scoring candidate settings with a
// caller-supplied trial function (typically a short fine-tuning run
// evaluated on the validation labels) and climbing to a local optimum.

#ifndef SUDOWOODO_MATCHER_THRESHOLD_SEARCH_H_
#define SUDOWOODO_MATCHER_THRESHOLD_SEARCH_H_

#include <functional>
#include <vector>

#include "matcher/pseudo_label.h"

namespace sudowoodo::matcher {

/// Options for the hill climb.
struct ThresholdSearchOptions {
  /// Multiplicative step applied to the positive-ratio ρ per move.
  double step = 1.3;
  /// Maximum fine-tuning trials (the paper fixes a small trial budget).
  int max_trials = 5;
};

/// Result of the search.
struct ThresholdSearchResult {
  double best_pos_ratio = 0.0;
  double best_score = 0.0;
  int trials_run = 0;
  /// Scores per trial in evaluation order (diagnostics).
  std::vector<std::pair<double, double>> history;  // {pos_ratio, score}
};

/// Hill-climbs the pseudo-label positive ratio starting from
/// `options.pos_ratio` in the given PseudoLabelOptions. `trial` receives a
/// candidate PseudoLabelResult and returns a quality score (higher is
/// better), e.g. validation F1 after a short fine-tune. Scored pairs are
/// re-labeled per candidate ratio.
ThresholdSearchResult HillClimbPositiveRatio(
    const std::vector<ScoredPair>& scored, const PseudoLabelOptions& base,
    const std::function<double(const PseudoLabelResult&)>& trial,
    const ThresholdSearchOptions& options = {});

}  // namespace sudowoodo::matcher

#endif  // SUDOWOODO_MATCHER_THRESHOLD_SEARCH_H_
