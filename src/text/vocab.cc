#include "text/vocab.h"

#include <algorithm>

#include "common/status.h"

namespace sudowoodo::text {

Vocab::Vocab() {
  tokens_ = {"[PAD]", "[UNK]", "[CLS]", "[SEP]", "[COL]", "[VAL]"};
  for (size_t i = 0; i < tokens_.size(); ++i) {
    ids_[tokens_[i]] = static_cast<int>(i);
  }
}

Vocab Vocab::Build(const std::vector<std::vector<std::string>>& corpus,
                   int max_size, int min_freq) {
  Vocab vocab;
  std::unordered_map<std::string, int64_t> freq;
  for (const auto& text : corpus) {
    for (const auto& tok : text) {
      if (vocab.ids_.count(tok)) continue;  // specials already present
      ++freq[tok];
    }
  }
  std::vector<std::pair<std::string, int64_t>> sorted(freq.begin(), freq.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  for (const auto& [tok, count] : sorted) {
    if (count < min_freq) break;
    if (vocab.size() >= max_size) break;
    vocab.ids_[tok] = vocab.size();
    vocab.tokens_.push_back(tok);
  }
  return vocab;
}

int Vocab::Id(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kUnk : it->second;
}

std::vector<int> Vocab::Encode(const std::vector<std::string>& tokens,
                               bool add_cls) const {
  std::vector<int> out;
  out.reserve(tokens.size() + 1);
  if (add_cls) out.push_back(kCls);
  for (const auto& tok : tokens) out.push_back(Id(tok));
  return out;
}

const std::string& Vocab::Token(int id) const {
  SUDO_CHECK(id >= 0 && id < size());
  return tokens_[static_cast<size_t>(id)];
}

}  // namespace sudowoodo::text
