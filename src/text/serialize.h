// Serialization of data items into token streams, following the Ditto
// scheme the paper adopts (§II-B):
//
//   entity entry:   [COL] attr1 [VAL] v1 ... [COL] attrm [VAL] vm
//   pair (x, y):    [CLS] serialize(x) [SEP] serialize(y) [SEP]
//   table column:   [VAL] cell1 [VAL] cell2 ...          (§V-B, bare-bone)
//   cell (ctx-free):[COL] attr_i [VAL] r_i               (§V-A)

#ifndef SUDOWOODO_TEXT_SERIALIZE_H_
#define SUDOWOODO_TEXT_SERIALIZE_H_

#include <string>
#include <utility>
#include <vector>

namespace sudowoodo::text {

/// One attribute of a data item: {name, raw value}.
using AttrValue = std::pair<std::string, std::string>;

/// Serializes an entity entry / table row into a token stream.
std::vector<std::string> SerializeAttrs(const std::vector<AttrValue>& attrs);

/// Serializes a table column (value concatenation, no meta-information).
std::vector<std::string> SerializeColumn(
    const std::vector<std::string>& values);

/// Joins two serialized items into the pair form; no [CLS] here - the vocab
/// encoder prepends it.
std::vector<std::string> SerializePairTokens(
    const std::vector<std::string>& x, const std::vector<std::string>& y);

}  // namespace sudowoodo::text

#endif  // SUDOWOODO_TEXT_SERIALIZE_H_
