#include "text/serialize.h"

#include "text/tokenizer.h"

namespace sudowoodo::text {

std::vector<std::string> SerializeAttrs(const std::vector<AttrValue>& attrs) {
  std::vector<std::string> out;
  for (const auto& [name, value] : attrs) {
    out.push_back("[COL]");
    for (const auto& tok : Tokenize(name)) out.push_back(tok);
    out.push_back("[VAL]");
    for (const auto& tok : Tokenize(value)) out.push_back(tok);
  }
  return out;
}

std::vector<std::string> SerializeColumn(
    const std::vector<std::string>& values) {
  std::vector<std::string> out;
  for (const auto& v : values) {
    out.push_back("[VAL]");
    for (const auto& tok : Tokenize(v)) out.push_back(tok);
  }
  return out;
}

std::vector<std::string> SerializePairTokens(
    const std::vector<std::string>& x, const std::vector<std::string>& y) {
  std::vector<std::string> out;
  out.reserve(x.size() + y.size() + 2);
  out.insert(out.end(), x.begin(), x.end());
  out.push_back("[SEP]");
  out.insert(out.end(), y.begin(), y.end());
  out.push_back("[SEP]");
  return out;
}

}  // namespace sudowoodo::text
