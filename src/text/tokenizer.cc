#include "text/tokenizer.h"

#include <cctype>

namespace sudowoodo::text {

namespace {
bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.';
}
}  // namespace

std::vector<std::string> Tokenize(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&]() {
    // Strip leading/trailing '-'/'.' so "end." tokenizes as "end".
    size_t b = 0, e = cur.size();
    while (b < e && (cur[b] == '-' || cur[b] == '.')) ++b;
    while (e > b && (cur[e - 1] == '-' || cur[e - 1] == '.')) --e;
    if (e > b) out.push_back(cur.substr(b, e - b));
    cur.clear();
  };
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '[') {
      // Pass through special markers like [COL] atomically.
      size_t close = s.find(']', i);
      if (close != std::string::npos && close - i <= 6) {
        flush();
        out.push_back(s.substr(i, close - i + 1));
        i = close;
        continue;
      }
    }
    if (IsWordChar(c)) {
      cur.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

bool IsSpecialToken(const std::string& tok) {
  return tok.size() >= 3 && tok.front() == '[' && tok.back() == ']';
}

}  // namespace sudowoodo::text
