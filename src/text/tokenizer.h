// Word-level tokenization for serialized data items.
//
// The paper serializes data items into token sequences consumed by a
// (sub)word-level LM. Our from-scratch stand-in uses word-level tokens:
// lowercase, split on whitespace, punctuation split off, with special
// marker tokens ([COL], [VAL], ...) passed through atomically.

#ifndef SUDOWOODO_TEXT_TOKENIZER_H_
#define SUDOWOODO_TEXT_TOKENIZER_H_

#include <string>
#include <vector>

namespace sudowoodo::text {

/// Splits free text into lowercase word/number tokens. Alphanumeric runs
/// (including '-', '.') stay together so model numbers like "mx-4820" and
/// prices like "36.11" survive as single tokens.
std::vector<std::string> Tokenize(const std::string& s);

/// True for marker tokens of the serialization scheme, e.g. "[COL]".
bool IsSpecialToken(const std::string& tok);

}  // namespace sudowoodo::text

#endif  // SUDOWOODO_TEXT_TOKENIZER_H_
