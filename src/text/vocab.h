// Frequency-built vocabulary with the serialization scheme's special tokens.

#ifndef SUDOWOODO_TEXT_VOCAB_H_
#define SUDOWOODO_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace sudowoodo::text {

/// Token-id mapping. Ids 0..5 are reserved for the special tokens used by
/// the Ditto serialization scheme adopted in the paper (§II-B):
/// [PAD]=0, [UNK]=1, [CLS]=2, [SEP]=3, [COL]=4, [VAL]=5.
class Vocab {
 public:
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kCls = 2;
  static constexpr int kSep = 3;
  static constexpr int kCol = 4;
  static constexpr int kVal = 5;

  Vocab();

  /// Builds the vocabulary from tokenized texts, keeping at most `max_size`
  /// tokens (including specials) with frequency >= `min_freq`.
  static Vocab Build(const std::vector<std::vector<std::string>>& corpus,
                     int max_size = 8000, int min_freq = 1);

  /// Token id, or kUnk.
  int Id(const std::string& token) const;

  /// Encodes tokens to ids, prepending [CLS] when `add_cls` is true.
  std::vector<int> Encode(const std::vector<std::string>& tokens,
                          bool add_cls = true) const;

  const std::string& Token(int id) const;
  int size() const { return static_cast<int>(tokens_.size()); }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace sudowoodo::text

#endif  // SUDOWOODO_TEXT_VOCAB_H_
