// Evaluation metrics used across the reproduction: binary P/R/F1 for
// matching tasks, blocking recall / CSSR (Table VII, Fig. 7), cluster
// purity (Table XIII/Appendix C), and pseudo-label TPR/TNR (Table XI).

#ifndef SUDOWOODO_PIPELINE_METRICS_H_
#define SUDOWOODO_PIPELINE_METRICS_H_

#include <vector>

namespace sudowoodo::pipeline {

/// Precision / recall / F1 of the positive class.
struct PRF1 {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Binary classification metrics. preds and labels are 0/1.
PRF1 ComputePRF1(const std::vector<int>& preds,
                 const std::vector<int>& labels);

/// True-positive rate and true-negative rate (Table XI).
struct TprTnr {
  double tpr = 0.0;
  double tnr = 0.0;
};
TprTnr ComputeTprTnr(const std::vector<int>& preds,
                     const std::vector<int>& labels);

/// Average cluster purity: for each cluster, the fraction of members
/// sharing the majority ground-truth label, weighted by cluster size.
double ClusterPurity(const std::vector<std::vector<int>>& clusters,
                     const std::vector<int>& labels);

}  // namespace sudowoodo::pipeline

#endif  // SUDOWOODO_PIPELINE_METRICS_H_
