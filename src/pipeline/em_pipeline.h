// The end-to-end Entity Matching pipeline of Fig. 2:
//
//   ① contrastive pre-training on the unlabeled union of tables A and B,
//   ② blocking by kNN similarity search over the learned embeddings,
//   ③ pseudo labeling from the candidate set,
//   ④ similarity-aware fine-tuning of the pairwise matcher.
//
// Every Sudowoodo optimization is a switch, so this one class runs the full
// method, the SimCLR base, all ablations of Table V/VI, and the
// no-pre-training (Ditto-style) baseline configurations.

#ifndef SUDOWOODO_PIPELINE_EM_PIPELINE_H_
#define SUDOWOODO_PIPELINE_EM_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "contrastive/pretrainer.h"
#include "data/em_dataset.h"
#include "index/embedding_cache.h"
#include "index/ivf_index.h"
#include "matcher/pair_matcher.h"
#include "matcher/pseudo_label.h"
#include "nn/encoder.h"
#include "pipeline/metrics.h"
#include "text/vocab.h"

namespace sudowoodo {
class ThreadPool;  // common/thread_pool.h
}

namespace sudowoodo::pipeline {

/// Which encoder backbone to instantiate. FastBag is the cheap DistilBERT
/// analogue; Transformer is the RoBERTa analogue (§VI-A2 / §VI-B).
enum class EncoderKind { kFastBag, kTransformer };

/// Full pipeline configuration.
struct EmPipelineOptions {
  EncoderKind encoder_kind = EncoderKind::kFastBag;
  int encoder_dim = 64;
  /// Token budget per sequence; pairs need roughly twice the single-item
  /// length under the [COL]/[VAL] serialization.
  int max_len = 96;
  int vocab_size = 6000;

  contrastive::PretrainOptions pretrain;
  matcher::FinetuneOptions finetune;

  /// Manually labeled pairs sampled uniformly from train+valid. The same
  /// labels double as the validation set ("We use the same 500 labels for
  /// validation for further label saving", §VI-B). 0 = unsupervised.
  int label_budget = 500;
  /// Step ③: augment with pseudo labels (the PL optimization).
  bool use_pseudo_labels = true;
  /// Positive-ratio prior ρ; < 0 uses the dataset statistic, which the
  /// paper treats as available ("prior knowledge of the positive label
  /// ratio which is available as a dataset statistics", §VI-B).
  double pl_pos_ratio = -1.0;
  int pl_multiplier = 8;
  /// k of the kNN blocking that produces the candidate set for PL.
  int blocking_k = 10;
  /// Which blocking index to build over the B-side embeddings: the exact
  /// oracle, the sub-linear IVF index, or (default) exact below
  /// `blocking_index.exact_threshold` items and IVF above it. The IVF
  /// seed/threads/pool are derived from this struct's seed/num_threads/
  /// pool; see index/ivf_index.h and EXPERIMENTS.md "ANN blocking".
  index::BlockingIndexOptions blocking_index;
  /// Skip step ① (the pre-trained-LM-only baselines: Ditto, RoBERTa-base).
  bool skip_pretrain = false;
  /// Rotom-style fine-tuning augmentation: every manual training pair is
  /// duplicated through a DA operator (the meta-learned operator-selection
  /// of the real Rotom is approximated by a fixed operator).
  bool augment_finetune = false;

  /// Worker threads for the embarrassingly parallel stages (batched
  /// inference encoding - GEMM row shards and per-sequence attention -
  /// and kNN blocking). Results are bit-identical for any value; 1 = the
  /// serial path.
  int num_threads = 1;
  /// Worker threads for contrastive pre-training (batched training
  /// forward/backward GEMM shards, per-sequence attention subgraphs, and
  /// the scheduler's k-means assignment). Training losses are
  /// bit-identical for any value - counter-based dropout keys masks by
  /// position, not draw order (see common/rng.h). 1 = serial training.
  int train_num_threads = 1;
  /// Worker pool those stages run on, plumbed through MakeEncoder into
  /// Linear::Forward's row-sharded GEMM overload. nullptr = the
  /// process-global pool (common/thread_pool.h) when num_threads > 1.
  ThreadPool* pool = nullptr;

  /// Entry budget of the content-keyed embedding cache attached to the
  /// serving-time encoder (blocking, prediction): repeated serialized
  /// entries skip the encoder, with hits bit-identical to fresh encodes
  /// (stale entries are cleared after any training phase). 0 disables.
  /// Hit/miss/eviction counters land in EmRunResult::embed_cache.
  size_t embedding_cache_capacity = 0;

  /// Storage mode of the embedding cache's entries: kInt8 stores each
  /// cached vector as int8 codes + one scale (4x smaller; hits return
  /// the quantized image instead of the exact floats - see
  /// EmbeddingCache). Opt-in; kFp32 keeps hits bit-identical.
  index::IndexStorage embedding_cache_storage = index::IndexStorage::kFp32;

  uint64_t seed = 7;
};

/// Output of a blocking run at one k.
struct BlockingPoint {
  int k = 0;
  int n_candidates = 0;
  double recall = 0.0;
  double cssr = 0.0;  // candidate set size ratio = |cand| / (|A|·|B|)
};

/// Everything a bench needs from one pipeline run.
struct EmRunResult {
  PRF1 test;
  std::vector<int> test_preds;
  std::vector<float> test_probs;

  double pretrain_seconds = 0.0;
  double blocking_seconds = 0.0;
  double finetune_seconds = 0.0;
  double total_seconds = 0.0;

  /// Pseudo-label quality vs (hidden) gold labels - Table XI.
  TprTnr pl_quality;
  int n_pseudo = 0;
  double theta_pos = 0.0;
  double theta_neg = 0.0;
  /// Fraction of in-batch cluster negatives that are actually matches
  /// (the false-negative rate of Fig. 8, row 3).
  double cluster_fnr = 0.0;

  /// Serving-time embedding-cache counters (zero when the cache is off).
  index::EmbeddingCacheStats embed_cache;
};

/// Runs the Fig. 2 pipeline on one dataset.
class EmPipeline {
 public:
  explicit EmPipeline(const EmPipelineOptions& options);

  /// Full run: pre-train, block, pseudo-label, fine-tune, evaluate on test.
  EmRunResult Run(const data::EmDataset& ds);

  /// Pre-trains (or not, per options) and sweeps blocking k = 1..k_max,
  /// reporting recall/CSSR points (Table VII, Fig. 7).
  std::vector<BlockingPoint> BlockingSweep(const data::EmDataset& ds,
                                           int k_max);

  /// Serialized token stream of a row (exposed for the baselines/benches).
  static std::vector<std::string> SerializeRow(const data::Table& table,
                                               int row);

  /// Converts a labeled pair into a training example.
  static matcher::PairExample MakeExample(const data::EmDataset& ds,
                                          const data::LabeledPair& pair);

 private:
  /// Builds vocab + encoder and (unless skipped) runs pre-training.
  struct Prepared {
    text::Vocab vocab;
    std::unique_ptr<index::EmbeddingCache> cache;  // outlives the encoder use
    std::unique_ptr<nn::Encoder> encoder;
    std::vector<std::vector<std::string>> tokens_a;
    std::vector<std::vector<std::string>> tokens_b;
    double pretrain_seconds = 0.0;
    double cluster_fnr = 0.0;
  };
  Prepared Prepare(const data::EmDataset& ds);

  EmPipelineOptions options_;
};

/// Creates an encoder of the given kind (shared with other pipelines).
/// `pool`/`num_threads` configure the batched inference path: the pool
/// (or, when nullptr and num_threads > 1, the process-global one) is
/// threaded through the encoder into Linear::Forward's row-sharded GEMM
/// overload for serving-time encoding. `cache` (caller-owned, optional)
/// attaches a content-keyed embedding cache to the serving path (see
/// Encoder::set_embedding_cache for the staleness contract).
std::unique_ptr<nn::Encoder> MakeEncoder(
    EncoderKind kind, int vocab_size, int dim, int max_len, uint64_t seed,
    ThreadPool* pool = nullptr, int num_threads = 1,
    index::EmbeddingCache* cache = nullptr);

/// Measures how often Algorithm 2's in-batch negatives are actually gold
/// matches (the FNR panel of Fig. 8).
double MeasureClusterFnr(const std::vector<std::vector<std::string>>& tokens_a,
                         const std::vector<std::vector<std::string>>& tokens_b,
                         const data::EmDataset& ds, int num_clusters,
                         int batch_size, uint64_t seed);

}  // namespace sudowoodo::pipeline

#endif  // SUDOWOODO_PIPELINE_EM_PIPELINE_H_
