// Semantic type detection as column matching (§V-B, §VI-D):
//
//   * serialize each column bare-bone ([VAL] v1 [VAL] v2 ...),
//   * contrastive pre-training with the cell-level shuffle operator,
//   * kNN blocking (k = 20) to extract candidate column pairs,
//   * label a small sample of candidate pairs (match <=> same ground-truth
//     type), split 2:1:1, fine-tune the pairwise matcher,
//   * connected components over predicted matches discover column
//     clusters, including fine-grained types beyond the label set
//     (Tables IX, X, XII, XIII; Fig. 12).

#ifndef SUDOWOODO_PIPELINE_COLUMN_PIPELINE_H_
#define SUDOWOODO_PIPELINE_COLUMN_PIPELINE_H_

#include <string>
#include <vector>

#include "contrastive/pretrainer.h"
#include "data/column_corpus.h"
#include "matcher/pair_matcher.h"
#include "pipeline/em_pipeline.h"
#include "pipeline/metrics.h"

namespace sudowoodo::pipeline {

/// Configuration for a column-matching run.
struct ColumnPipelineOptions {
  EncoderKind encoder_kind = EncoderKind::kFastBag;
  int encoder_dim = 64;
  int max_len = 64;
  int vocab_size = 8000;

  contrastive::PretrainOptions pretrain;
  matcher::FinetuneOptions finetune;

  int blocking_k = 20;    // paper: kNN with k = 20
  /// Blocking index selection (exact oracle vs sub-linear IVF; default
  /// auto-switches on corpus size). Seed/threads/pool for IVF training are
  /// derived from this struct; see index/ivf_index.h.
  index::BlockingIndexOptions blocking_index;
  int labeled_pairs = 2000;  // paper: 2k pairs, split 2:1:1
  /// Minimum match probability for an edge in cluster discovery. The paper
  /// notes the clustering granularity is adjustable (§V-B); a high
  /// threshold keeps components pure instead of collapsing into one blob.
  float cluster_edge_threshold = 0.9f;

  /// Worker threads for batched inference encoding and kNN blocking;
  /// bit-identical results for any value, 1 = serial.
  int num_threads = 1;
  /// Worker threads for contrastive pre-training (bit-identical losses
  /// for any value; see EmPipelineOptions::train_num_threads).
  int train_num_threads = 1;
  /// Worker pool for those stages; nullptr = the process-global pool when
  /// num_threads > 1 (see EmPipelineOptions::pool).
  ThreadPool* pool = nullptr;

  /// Entry budget of the content-keyed embedding cache on the serving
  /// path (column blocking + pair matching re-encode the same serialized
  /// columns; hits are bit-identical to fresh encodes). 0 disables.
  /// Counters land in ColumnRunResult::embed_cache.
  size_t embedding_cache_capacity = 0;

  /// Storage mode of the embedding cache's entries: kInt8 stores each
  /// cached vector as int8 codes + one scale (4x smaller; hits return
  /// the quantized image instead of the exact floats - see
  /// EmbeddingCache). Opt-in; kFp32 keeps hits bit-identical.
  index::IndexStorage embedding_cache_storage = index::IndexStorage::kFp32;

  uint64_t seed = 29;
};

/// A labeled candidate column pair.
struct ColumnPair {
  int c1 = 0;
  int c2 = 0;
  int label = 0;
};

/// Outcome of a run.
struct ColumnRunResult {
  PRF1 valid;
  PRF1 test;
  /// Discovered clusters (connected components of predicted matches).
  std::vector<std::vector<int>> clusters;
  double purity = 0.0;  // vs coarse ground-truth types
  int n_candidates = 0;
  double candidate_pos_ratio = 0.0;
  double blocking_seconds = 0.0;
  double matching_seconds = 0.0;
  double total_seconds = 0.0;
  /// Per-coarse-type test F1 (Fig. 12); indexed by type id.
  std::vector<PRF1> per_type;
  /// Serving-time embedding-cache counters (zero when the cache is off).
  index::EmbeddingCacheStats embed_cache;
};

/// Runs §V-B end to end.
class ColumnPipeline {
 public:
  explicit ColumnPipeline(const ColumnPipelineOptions& options);

  ColumnRunResult Run(const data::ColumnCorpus& corpus);

 private:
  ColumnPipelineOptions options_;
};

/// Connected components over an undirected edge list on n nodes.
std::vector<std::vector<int>> ConnectedComponents(
    int n, const std::vector<std::pair<int, int>>& edges);

}  // namespace sudowoodo::pipeline

#endif  // SUDOWOODO_PIPELINE_COLUMN_PIPELINE_H_
