#include "pipeline/metrics.h"

#include <unordered_map>

#include "common/status.h"

namespace sudowoodo::pipeline {

PRF1 ComputePRF1(const std::vector<int>& preds,
                 const std::vector<int>& labels) {
  SUDO_CHECK(preds.size() == labels.size());
  int64_t tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == 1 && labels[i] == 1) ++tp;
    if (preds[i] == 1 && labels[i] == 0) ++fp;
    if (preds[i] == 0 && labels[i] == 1) ++fn;
  }
  PRF1 out;
  out.precision = (tp + fp) > 0 ? static_cast<double>(tp) / (tp + fp) : 0.0;
  out.recall = (tp + fn) > 0 ? static_cast<double>(tp) / (tp + fn) : 0.0;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

TprTnr ComputeTprTnr(const std::vector<int>& preds,
                     const std::vector<int>& labels) {
  SUDO_CHECK(preds.size() == labels.size());
  int64_t tp = 0, pos = 0, tn = 0, neg = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (labels[i] == 1) {
      ++pos;
      if (preds[i] == 1) ++tp;
    } else {
      ++neg;
      if (preds[i] == 0) ++tn;
    }
  }
  TprTnr out;
  out.tpr = pos > 0 ? static_cast<double>(tp) / pos : 1.0;
  out.tnr = neg > 0 ? static_cast<double>(tn) / neg : 1.0;
  return out;
}

double ClusterPurity(const std::vector<std::vector<int>>& clusters,
                     const std::vector<int>& labels) {
  int64_t total = 0, pure = 0;
  for (const auto& cluster : clusters) {
    if (cluster.empty()) continue;
    std::unordered_map<int, int> votes;
    for (int member : cluster) {
      ++votes[labels[static_cast<size_t>(member)]];
    }
    int best = 0;
    for (const auto& [label, count] : votes) {
      (void)label;
      best = std::max(best, count);
    }
    total += static_cast<int64_t>(cluster.size());
    pure += best;
  }
  return total > 0 ? static_cast<double>(pure) / static_cast<double>(total)
                   : 1.0;
}

}  // namespace sudowoodo::pipeline
