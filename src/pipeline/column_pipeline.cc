#include "pipeline/column_pipeline.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/timer.h"
#include "index/ivf_index.h"
#include "text/serialize.h"

namespace sudowoodo::pipeline {

namespace {

/// Union-find with path compression.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(int a, int b) { parent_[static_cast<size_t>(Find(a))] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

std::vector<std::vector<int>> ConnectedComponents(
    int n, const std::vector<std::pair<int, int>>& edges) {
  UnionFind uf(n);
  for (const auto& [a, b] : edges) uf.Union(a, b);
  std::vector<std::vector<int>> by_root(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    by_root[static_cast<size_t>(uf.Find(i))].push_back(i);
  }
  std::vector<std::vector<int>> out;
  for (auto& c : by_root) {
    if (!c.empty()) out.push_back(std::move(c));
  }
  return out;
}

ColumnPipeline::ColumnPipeline(const ColumnPipelineOptions& options)
    : options_(options) {}

ColumnRunResult ColumnPipeline::Run(const data::ColumnCorpus& corpus) {
  WallTimer total_timer;
  ColumnRunResult result;
  Rng rng(options_.seed * 2083 + 11);
  const int n = static_cast<int>(corpus.columns.size());

  // Bare-bone serialization (§V-B: no column names or meta-information).
  std::vector<std::vector<std::string>> tokens;
  tokens.reserve(static_cast<size_t>(n));
  for (const auto& col : corpus.columns) {
    tokens.push_back(text::SerializeColumn(col.values));
  }
  text::Vocab vocab = text::Vocab::Build(tokens, options_.vocab_size);
  std::unique_ptr<index::EmbeddingCache> cache;
  if (options_.embedding_cache_capacity > 0) {
    cache = std::make_unique<index::EmbeddingCache>(
        options_.embedding_cache_capacity, /*num_shards=*/8,
        options_.embedding_cache_storage);
  }
  auto encoder =
      MakeEncoder(options_.encoder_kind, vocab.size(), options_.encoder_dim,
                  options_.max_len, options_.seed, options_.pool,
                  options_.num_threads, cache.get());

  // Pre-training with the cell-level operator (attribute ops do not apply
  // to columns, §V-B).
  {
    contrastive::PretrainOptions popts = options_.pretrain;
    popts.da_op = augment::DaOp::kCellShuffle;
    popts.seed = options_.seed * 53 + 1;
    popts.num_threads = options_.train_num_threads;
    popts.pool = options_.pool;
    contrastive::Pretrainer pretrainer(encoder.get(), &vocab, popts);
    SUDO_CHECK_OK(pretrainer.Run(tokens));
  }

  // kNN blocking over column embeddings.
  WallTimer blocking_timer;
  std::vector<std::vector<int>> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(vocab.Encode(t));
  auto emb = encoder->EmbedNormalized(ids);
  index::BlockingIndexOptions bopts = options_.blocking_index;
  bopts.ivf.seed = options_.seed * 6151 + 3;
  bopts.ivf.num_threads = options_.num_threads;
  bopts.ivf.pool = options_.pool;
  index::BlockingIndex index(emb, bopts);
  const index::VectorIndex& block_index = index;
  std::set<std::pair<int, int>> candidate_set;
  std::vector<std::vector<index::Neighbor>> col_topk;
  SUDO_CHECK_OK(block_index.QueryBatch(emb, options_.blocking_k + 1,
                                       &col_topk, options_.num_threads));
  for (int i = 0; i < n; ++i) {
    for (const auto& nb : col_topk[static_cast<size_t>(i)]) {
      if (nb.id == i) continue;
      candidate_set.insert({std::min(i, nb.id), std::max(i, nb.id)});
    }
  }
  std::vector<std::pair<int, int>> candidates(candidate_set.begin(),
                                              candidate_set.end());
  result.blocking_seconds = blocking_timer.ElapsedSeconds();
  result.n_candidates = static_cast<int>(candidates.size());
  {
    int64_t pos = 0;
    for (const auto& [a, b] : candidates) {
      if (corpus.columns[static_cast<size_t>(a)].type_id ==
          corpus.columns[static_cast<size_t>(b)].type_id) {
        ++pos;
      }
    }
    result.candidate_pos_ratio =
        candidates.empty()
            ? 0.0
            : static_cast<double>(pos) / static_cast<double>(candidates.size());
  }

  // Label a sample of candidate pairs (match <=> same coarse type; §VI-D)
  // and split 2:1:1.
  WallTimer matching_timer;
  std::vector<int> order = rng.SampleWithoutReplacement(
      static_cast<int>(candidates.size()),
      std::min<int>(options_.labeled_pairs,
                    static_cast<int>(candidates.size())));
  std::vector<ColumnPair> labeled;
  for (int i : order) {
    const auto& [a, b] = candidates[static_cast<size_t>(i)];
    labeled.push_back({a, b,
                       corpus.columns[static_cast<size_t>(a)].type_id ==
                               corpus.columns[static_cast<size_t>(b)].type_id
                           ? 1
                           : 0});
  }
  const int n_lab = static_cast<int>(labeled.size());
  const int n_train = n_lab / 2;
  const int n_valid = n_lab / 4;
  auto to_examples = [&](int begin, int end) {
    std::vector<matcher::PairExample> out;
    for (int i = begin; i < end; ++i) {
      const auto& p = labeled[static_cast<size_t>(i)];
      out.push_back({tokens[static_cast<size_t>(p.c1)],
                     tokens[static_cast<size_t>(p.c2)], p.label});
    }
    return out;
  };
  auto train = to_examples(0, n_train);
  auto valid = to_examples(n_train, n_train + n_valid);
  auto test = to_examples(n_train + n_valid, n_lab);

  matcher::FinetuneOptions fopts = options_.finetune;
  fopts.seed = options_.seed * 97 + 3;
  matcher::PairMatcher pm(encoder.get(), &vocab, fopts);
  SUDO_CHECK_OK(pm.Train(train, valid));

  auto eval = [&](const std::vector<matcher::PairExample>& split) {
    std::vector<int> preds = pm.Predict(split);
    std::vector<int> labels;
    labels.reserve(split.size());
    for (const auto& ex : split) labels.push_back(ex.label);
    return ComputePRF1(preds, labels);
  };
  result.valid = eval(valid);
  result.test = eval(test);

  // Per-type breakdown on the test split (Fig. 12): a pair contributes to
  // the types of both its columns.
  {
    std::vector<std::vector<int>> preds_by_type(
        static_cast<size_t>(corpus.num_types()));
    std::vector<std::vector<int>> labels_by_type(
        static_cast<size_t>(corpus.num_types()));
    std::vector<int> preds = pm.Predict(test);
    for (size_t i = 0; i < test.size(); ++i) {
      const auto& p = labeled[static_cast<size_t>(n_train + n_valid) + i];
      for (int t : {corpus.columns[static_cast<size_t>(p.c1)].type_id,
                    corpus.columns[static_cast<size_t>(p.c2)].type_id}) {
        preds_by_type[static_cast<size_t>(t)].push_back(preds[i]);
        labels_by_type[static_cast<size_t>(t)].push_back(p.label);
      }
    }
    result.per_type.resize(static_cast<size_t>(corpus.num_types()));
    for (int t = 0; t < corpus.num_types(); ++t) {
      result.per_type[static_cast<size_t>(t)] =
          ComputePRF1(preds_by_type[static_cast<size_t>(t)],
                      labels_by_type[static_cast<size_t>(t)]);
    }
  }

  // Cluster discovery: predict over *all* candidate pairs, connect the
  // predicted matches, take connected components (§V-B / Table XIII).
  std::vector<matcher::PairExample> all_pairs;
  all_pairs.reserve(candidates.size());
  for (const auto& [a, b] : candidates) {
    all_pairs.push_back(
        {tokens[static_cast<size_t>(a)], tokens[static_cast<size_t>(b)], 0});
  }
  std::vector<float> match_probs = pm.PredictProba(all_pairs);
  // Conservative edge selection: probability threshold plus a top-3 cap
  // per node. Connected components chain-merge through every false
  // positive, so precision matters far more than recall here (the paper
  // adjusts clustering granularity the same way, §V-B).
  std::vector<std::vector<std::pair<float, int>>> node_edges(
      static_cast<size_t>(n));
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (match_probs[i] < options_.cluster_edge_threshold) continue;
    const auto& [a, b] = candidates[i];
    node_edges[static_cast<size_t>(a)].emplace_back(match_probs[i],
                                                    static_cast<int>(i));
    node_edges[static_cast<size_t>(b)].emplace_back(match_probs[i],
                                                    static_cast<int>(i));
  }
  std::set<int> kept;
  constexpr int kMaxEdgesPerNode = 3;
  for (auto& ne : node_edges) {
    std::sort(ne.begin(), ne.end(), std::greater<>());
    for (size_t j = 0; j < ne.size() && j < kMaxEdgesPerNode; ++j) {
      kept.insert(ne[j].second);
    }
  }
  std::vector<std::pair<int, int>> edges;
  for (int i : kept) edges.push_back(candidates[static_cast<size_t>(i)]);
  result.clusters = ConnectedComponents(n, edges);
  std::vector<int> coarse_labels;
  coarse_labels.reserve(static_cast<size_t>(n));
  for (const auto& col : corpus.columns) coarse_labels.push_back(col.type_id);
  result.purity = ClusterPurity(result.clusters, coarse_labels);
  result.matching_seconds = matching_timer.ElapsedSeconds();
  if (cache != nullptr) result.embed_cache = cache->stats();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace sudowoodo::pipeline
