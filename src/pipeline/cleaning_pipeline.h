// The data-cleaning pipeline of §V-A: error correction formulated as
// matching cells with candidate corrections.
//
//   * pre-train the representation model on all cells and their candidate
//     corrections (contextual or context-free serialization, as in Rotom);
//   * fine-tune the pairwise matcher on 20 uniformly sampled labeled rows
//     (the same supervision budget Baran's active learning uses, §VI-C);
//   * for each cell output argmax_{r^c in cand(r_i)} M_pm(r_i, r^c)_1 and
//     correct the cell when the model predicts a change.
//
// No pseudo labeling (the task is not similarity-based) and no blocking
// (candidate sets are small) - both per the paper.

#ifndef SUDOWOODO_PIPELINE_CLEANING_PIPELINE_H_
#define SUDOWOODO_PIPELINE_CLEANING_PIPELINE_H_

#include <memory>
#include <vector>

#include "contrastive/pretrainer.h"
#include "data/cleaning_dataset.h"
#include "data/profiling.h"
#include "matcher/pair_matcher.h"
#include "pipeline/em_pipeline.h"
#include "pipeline/metrics.h"

namespace sudowoodo::pipeline {

/// Configuration for one cleaning run.
struct CleaningPipelineOptions {
  EncoderKind encoder_kind = EncoderKind::kFastBag;
  int encoder_dim = 64;
  int max_len = 64;
  int vocab_size = 6000;

  contrastive::PretrainOptions pretrain;
  matcher::FinetuneOptions finetune;

  /// Labeled rows (paper: 20, matching Baran's supervision).
  int labeled_rows = 20;
  /// Use the contextual serialization (whole row) instead of context-free
  /// ("[COL] attr [VAL] value"); §V-A describes both.
  bool contextual = false;
  /// Skip contrastive pre-training (the "RoBERTa-base" row of Table VIII).
  bool skip_pretrain = false;
  /// Correction bias: the winning candidate's probability must exceed
  /// keep_prob - correction_bias. Positive values trade precision for
  /// recall; 0 (pure contest vs the identity score) works best.
  float correction_bias = 0.0f;
  /// Append profiling hint tokens (frequency bucket, FD agreement) to the
  /// serialization. See DESIGN.md §1.2 for why this substitution stands in
  /// for large-LM language knowledge.
  bool profile_hints = true;
  /// Cap on candidates per cell used to build training pairs (balance and
  /// speed knob; the true correction is always kept when covered).
  int max_train_candidates = 4;

  /// Worker threads for batched inference encoding (prediction over cell /
  /// candidate pairs); bit-identical results for any value, 1 = serial.
  int num_threads = 1;
  /// Worker threads for contrastive pre-training (bit-identical losses
  /// for any value; see EmPipelineOptions::train_num_threads).
  int train_num_threads = 1;
  /// Worker pool for those stages; nullptr = the process-global pool when
  /// num_threads > 1 (see EmPipelineOptions::pool).
  ThreadPool* pool = nullptr;

  /// Entry budget of the content-keyed embedding cache on the serving
  /// path. Cleaning's pair scoring re-encodes each cell's serialization
  /// once per candidate (plus the identity pair), so repeats dominate and
  /// the cache skips most encoder calls; hits are bit-identical to fresh
  /// encodes. 0 disables. Counters land in CleaningRunResult::embed_cache.
  size_t embedding_cache_capacity = 0;

  /// Storage mode of the embedding cache's entries: kInt8 stores each
  /// cached vector as int8 codes + one scale (4x smaller; hits return
  /// the quantized image instead of the exact floats - see
  /// EmbeddingCache). Opt-in; kFp32 keeps hits bit-identical.
  index::IndexStorage embedding_cache_storage = index::IndexStorage::kFp32;

  uint64_t seed = 23;
};

/// Outcome of a cleaning run.
struct CleaningRunResult {
  PRF1 correction;       // EC P/R/F1 over the evaluation rows (Table VIII)
  double pretrain_seconds = 0.0;
  double finetune_seconds = 0.0;
  double total_seconds = 0.0;
  int corrections_made = 0;
  int corrections_right = 0;
  int true_errors = 0;
  /// Serving-time embedding-cache counters (zero when the cache is off).
  index::EmbeddingCacheStats embed_cache;
};

/// Runs §V-A end to end on one generated benchmark.
class CleaningPipeline {
 public:
  explicit CleaningPipeline(const CleaningPipelineOptions& options);

  CleaningRunResult Run(const data::CleaningDataset& ds);

  /// Serialization of a cell (with an optional replacement value), exposed
  /// for tests. Context-free or contextual per the options. When profile
  /// hints are enabled the serialization appends the value's frequency
  /// bucket and its agreement with the row's FD-implied value - profiling
  /// signals standing in for the LM's language knowledge (DESIGN.md §1.2).
  std::vector<std::string> SerializeCell(const data::CleaningDataset& ds,
                                         int row, int col,
                                         const std::string* replace) const;

 private:
  CleaningPipelineOptions options_;
  std::unique_ptr<data::ColumnProfiles> profiles_;
  std::unique_ptr<data::VicinityModel> vicinity_;
};

}  // namespace sudowoodo::pipeline

#endif  // SUDOWOODO_PIPELINE_CLEANING_PIPELINE_H_
