#include "pipeline/em_pipeline.h"

#include <algorithm>
#include <set>

#include "cluster/batch_scheduler.h"
#include "common/timer.h"
#include "index/ivf_index.h"
#include "nn/gru.h"

namespace sudowoodo::pipeline {

namespace {

/// Blocking-index options for one run: the user-facing selection knobs
/// from the pipeline options plus the pipeline's own seed/threads/pool for
/// IVF cell training (so a fixed pipeline seed fixes the index).
index::BlockingIndexOptions ResolveBlockingIndexOptions(
    const EmPipelineOptions& options) {
  index::BlockingIndexOptions bopts = options.blocking_index;
  bopts.ivf.seed = options.seed * 6151 + 3;
  bopts.ivf.num_threads = options.num_threads;
  bopts.ivf.pool = options.pool;
  return bopts;
}

std::vector<std::vector<int>> EncodeAll(
    const text::Vocab& vocab,
    const std::vector<std::vector<std::string>>& tokens) {
  std::vector<std::vector<int>> out;
  out.reserve(tokens.size());
  for (const auto& t : tokens) out.push_back(vocab.Encode(t));
  return out;
}

}  // namespace

std::unique_ptr<nn::Encoder> MakeEncoder(EncoderKind kind, int vocab_size,
                                         int dim, int max_len, uint64_t seed,
                                         ThreadPool* pool, int num_threads,
                                         index::EmbeddingCache* cache) {
  std::unique_ptr<nn::Encoder> encoder;
  if (kind == EncoderKind::kTransformer) {
    nn::TransformerConfig config;
    config.vocab_size = vocab_size;
    config.dim = dim;
    config.max_len = max_len;
    config.n_layers = 2;
    config.n_heads = 4;
    config.ffn_dim = 2 * dim;
    config.pad_id = text::Vocab::kPad;
    config.seed = seed;
    encoder = std::make_unique<nn::TransformerEncoder>(config);
  } else {
    nn::FastBagConfig config;
    config.vocab_size = vocab_size;
    config.dim = dim;
    config.max_len = max_len;
    config.hidden_dim = 2 * dim;
    config.sep_token_id = text::Vocab::kSep;
    config.pad_id = text::Vocab::kPad;
    config.seed = seed;
    encoder = std::make_unique<nn::FastBagEncoder>(config);
  }
  encoder->set_thread_pool(pool);
  encoder->set_num_threads(num_threads);
  encoder->set_embedding_cache(cache);
  return encoder;
}

std::vector<std::string> EmPipeline::SerializeRow(const data::Table& table,
                                                  int row) {
  return text::SerializeAttrs(table.RowAttrs(row));
}

matcher::PairExample EmPipeline::MakeExample(const data::EmDataset& ds,
                                             const data::LabeledPair& pair) {
  matcher::PairExample ex;
  ex.x = SerializeRow(ds.table_a, pair.a_idx);
  ex.y = SerializeRow(ds.table_b, pair.b_idx);
  ex.label = pair.label;
  return ex;
}

EmPipeline::EmPipeline(const EmPipelineOptions& options) : options_(options) {}

EmPipeline::Prepared EmPipeline::Prepare(const data::EmDataset& ds) {
  Prepared prep;
  for (int i = 0; i < ds.table_a.num_rows(); ++i) {
    prep.tokens_a.push_back(SerializeRow(ds.table_a, i));
  }
  for (int i = 0; i < ds.table_b.num_rows(); ++i) {
    prep.tokens_b.push_back(SerializeRow(ds.table_b, i));
  }
  std::vector<std::vector<std::string>> corpus = prep.tokens_a;
  corpus.insert(corpus.end(), prep.tokens_b.begin(), prep.tokens_b.end());
  prep.vocab = text::Vocab::Build(corpus, options_.vocab_size);
  if (options_.embedding_cache_capacity > 0) {
    prep.cache = std::make_unique<index::EmbeddingCache>(
        options_.embedding_cache_capacity, /*num_shards=*/8,
        options_.embedding_cache_storage);
  }
  prep.encoder =
      MakeEncoder(options_.encoder_kind, prep.vocab.size(),
                  options_.encoder_dim, options_.max_len, options_.seed,
                  options_.pool, options_.num_threads, prep.cache.get());

  if (!options_.skip_pretrain) {
    contrastive::PretrainOptions popts = options_.pretrain;
    popts.seed = options_.seed * 7919 + 13;
    popts.num_threads = options_.train_num_threads;
    popts.pool = options_.pool;
    contrastive::Pretrainer pretrainer(prep.encoder.get(), &prep.vocab, popts);
    SUDO_CHECK_OK(pretrainer.Run(corpus));
    prep.pretrain_seconds = pretrainer.stats().seconds;
  }
  return prep;
}

EmRunResult EmPipeline::Run(const data::EmDataset& ds) {
  WallTimer total_timer;
  EmRunResult result;
  Rng rng(options_.seed * 104729 + 1);

  Prepared prep = Prepare(ds);
  result.pretrain_seconds = prep.pretrain_seconds;

  // ② Blocking: kNN over B for every A row.
  WallTimer blocking_timer;
  auto ids_a = EncodeAll(prep.vocab, prep.tokens_a);
  auto ids_b = EncodeAll(prep.vocab, prep.tokens_b);
  auto emb_a = prep.encoder->EmbedNormalized(ids_a);
  auto emb_b = prep.encoder->EmbedNormalized(ids_b);
  index::BlockingIndex index_b(emb_b, ResolveBlockingIndexOptions(options_));
  // Everything below the construction point sees only the VectorIndex
  // interface - the pipeline does not care which concrete index blocks.
  const index::VectorIndex& block_index = index_b;
  std::vector<matcher::ScoredPair> candidates;
  std::vector<std::vector<index::Neighbor>> topk;
  SUDO_CHECK_OK(block_index.QueryBatch(emb_a, options_.blocking_k, &topk,
                                       options_.num_threads));
  for (int a = 0; a < ds.table_a.num_rows(); ++a) {
    for (const auto& nb : topk[static_cast<size_t>(a)]) {
      candidates.push_back({a, nb.id, nb.sim});
    }
  }
  result.blocking_seconds = blocking_timer.ElapsedSeconds();

  // Manual labels: `label_budget` uniform samples from train+valid; the
  // same set doubles as validation (§VI-B).
  std::vector<data::LabeledPair> pool = ds.train;
  pool.insert(pool.end(), ds.valid.begin(), ds.valid.end());
  std::vector<data::LabeledPair> manual;
  if (options_.label_budget > 0) {
    auto idx = rng.SampleWithoutReplacement(
        static_cast<int>(pool.size()),
        std::min<int>(options_.label_budget, static_cast<int>(pool.size())));
    for (int i : idx) manual.push_back(pool[static_cast<size_t>(i)]);
  }

  // ③ Pseudo labeling over the unlabeled candidate set.
  std::vector<matcher::PairExample> train_examples;
  std::vector<matcher::PairExample> valid_examples;
  for (const auto& p : manual) train_examples.push_back(MakeExample(ds, p));
  for (const auto& p : manual) valid_examples.push_back(MakeExample(ds, p));
  if (options_.augment_finetune) {
    Rng aug_rng(options_.seed * 733 + 2);
    const size_t n_manual = train_examples.size();
    for (size_t i = 0; i < n_manual; ++i) {
      matcher::PairExample aug = train_examples[i];
      aug.x = augment::ApplyDaOp(options_.pretrain.da_op, aug.x, &aug_rng);
      aug.y = augment::ApplyDaOp(options_.pretrain.da_op, aug.y, &aug_rng);
      train_examples.push_back(std::move(aug));
    }
  }

  if (options_.use_pseudo_labels) {
    std::set<std::pair<int, int>> manual_set;
    for (const auto& p : manual) manual_set.insert({p.a_idx, p.b_idx});
    std::vector<matcher::ScoredPair> unlabeled;
    for (const auto& c : candidates) {
      if (!manual_set.count({c.a_idx, c.b_idx})) unlabeled.push_back(c);
    }
    matcher::PseudoLabelOptions plo;
    plo.pos_ratio = options_.pl_pos_ratio >= 0.0 ? options_.pl_pos_ratio
                                                 : ds.PositiveRatio();
    plo.multiplier = options_.pl_multiplier;
    plo.base_label_count =
        options_.label_budget > 0 ? options_.label_budget : 500;
    auto pl = matcher::GeneratePseudoLabels(unlabeled, plo);
    result.n_pseudo = static_cast<int>(pl.labels.size());
    result.theta_pos = pl.theta_pos;
    result.theta_neg = pl.theta_neg;

    // Pseudo-label quality vs hidden gold (Table XI).
    std::vector<int> pl_preds, pl_gold;
    for (const auto& l : pl.labels) {
      pl_preds.push_back(l.label);
      pl_gold.push_back(ds.entity_a[static_cast<size_t>(l.a_idx)] ==
                                ds.entity_b[static_cast<size_t>(l.b_idx)]
                            ? 1
                            : 0);
    }
    result.pl_quality = ComputeTprTnr(pl_preds, pl_gold);

    for (size_t i = 0; i < pl.labels.size(); ++i) {
      const auto& l = pl.labels[i];
      data::LabeledPair p{l.a_idx, l.b_idx, l.label};
      if (manual.empty() && i % 5 == 4) {
        // Unsupervised mode: hold out every 5th pseudo label for epoch
        // selection instead of manual validation labels.
        valid_examples.push_back(MakeExample(ds, p));
      } else {
        train_examples.push_back(MakeExample(ds, p));
      }
    }
  }

  if (train_examples.empty()) {
    // Nothing to train on: degenerate configuration.
    if (prep.cache != nullptr) result.embed_cache = prep.cache->stats();
    result.total_seconds = total_timer.ElapsedSeconds();
    return result;
  }

  // ④ Fine-tuning with the step budget fixed to the no-PL schedule.
  matcher::FinetuneOptions fopts = options_.finetune;
  fopts.seed = options_.seed * 31 + 5;
  if (options_.use_pseudo_labels) {
    const int base = std::max(
        64, options_.label_budget > 0 ? options_.label_budget : 500);
    fopts.max_steps =
        fopts.epochs * ((base + fopts.batch_size - 1) / fopts.batch_size);
  }
  matcher::PairMatcher pm(prep.encoder.get(), &prep.vocab, fopts);
  SUDO_CHECK_OK(pm.Train(train_examples, valid_examples));
  result.finetune_seconds = pm.train_seconds();

  // Test evaluation.
  std::vector<matcher::PairExample> test_examples;
  std::vector<int> test_labels;
  for (const auto& p : ds.test) {
    test_examples.push_back(MakeExample(ds, p));
    test_labels.push_back(p.label);
  }
  result.test_probs = pm.PredictProba(test_examples);
  result.test_preds.resize(result.test_probs.size());
  for (size_t i = 0; i < result.test_probs.size(); ++i) {
    result.test_preds[i] = result.test_probs[i] >= 0.5f ? 1 : 0;
  }
  result.test = ComputePRF1(result.test_preds, test_labels);
  if (prep.cache != nullptr) result.embed_cache = prep.cache->stats();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

std::vector<BlockingPoint> EmPipeline::BlockingSweep(const data::EmDataset& ds,
                                                     int k_max) {
  Prepared prep = Prepare(ds);
  auto ids_a = EncodeAll(prep.vocab, prep.tokens_a);
  auto ids_b = EncodeAll(prep.vocab, prep.tokens_b);
  auto emb_a = prep.encoder->EmbedNormalized(ids_a);
  auto emb_b = prep.encoder->EmbedNormalized(ids_b);
  index::BlockingIndex index_b(emb_b, ResolveBlockingIndexOptions(options_));
  const index::VectorIndex& block_index = index_b;

  // One query at k_max; prefixes give every smaller k.
  std::vector<std::vector<index::Neighbor>> topk;
  SUDO_CHECK_OK(
      block_index.QueryBatch(emb_a, k_max, &topk, options_.num_threads));

  std::set<std::pair<int, int>> gold(ds.gold_matches.begin(),
                                     ds.gold_matches.end());
  const double denom = static_cast<double>(ds.table_a.num_rows()) *
                       static_cast<double>(ds.table_b.num_rows());

  std::vector<BlockingPoint> points;
  for (int k = 1; k <= k_max; ++k) {
    int64_t n_cand = 0;
    int64_t hit = 0;
    std::set<std::pair<int, int>> seen_gold;
    for (size_t a = 0; a < topk.size(); ++a) {
      const int kk = std::min<int>(k, static_cast<int>(topk[a].size()));
      for (int j = 0; j < kk; ++j) {
        ++n_cand;
        auto key = std::make_pair(static_cast<int>(a), topk[a][j].id);
        if (gold.count(key) && seen_gold.insert(key).second) ++hit;
      }
    }
    BlockingPoint pt;
    pt.k = k;
    pt.n_candidates = static_cast<int>(n_cand);
    pt.recall = gold.empty() ? 1.0
                             : static_cast<double>(hit) /
                                   static_cast<double>(gold.size());
    pt.cssr = denom > 0 ? static_cast<double>(n_cand) / denom : 0.0;
    points.push_back(pt);
  }
  return points;
}

double MeasureClusterFnr(const std::vector<std::vector<std::string>>& tokens_a,
                         const std::vector<std::vector<std::string>>& tokens_b,
                         const data::EmDataset& ds, int num_clusters,
                         int batch_size, uint64_t seed) {
  std::vector<std::vector<std::string>> corpus = tokens_a;
  corpus.insert(corpus.end(), tokens_b.begin(), tokens_b.end());
  cluster::BatchScheduler scheduler(corpus, batch_size, num_clusters, seed);
  const int n_a = static_cast<int>(tokens_a.size());
  int64_t pairs = 0, false_negatives = 0;
  for (const auto& batch : scheduler.NextEpoch()) {
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t j = i + 1; j < batch.size(); ++j) {
        int u = batch[i], v = batch[j];
        if (u > v) std::swap(u, v);
        // Only A-B pairs can be gold matches.
        if (u >= n_a || v < n_a) continue;
        ++pairs;
        if (ds.entity_a[static_cast<size_t>(u)] ==
            ds.entity_b[static_cast<size_t>(v - n_a)]) {
          ++false_negatives;
        }
      }
    }
  }
  return pairs > 0 ? static_cast<double>(false_negatives) /
                         static_cast<double>(pairs)
                   : 0.0;
}

}  // namespace sudowoodo::pipeline
