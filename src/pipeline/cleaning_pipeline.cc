#include "pipeline/cleaning_pipeline.h"

#include <algorithm>

#include "common/timer.h"
#include "sparse/similarity.h"
#include "text/serialize.h"

namespace sudowoodo::pipeline {

CleaningPipeline::CleaningPipeline(const CleaningPipelineOptions& options)
    : options_(options) {}

namespace {
constexpr int kSideDim = 8;
}  // namespace

std::vector<std::string> CleaningPipeline::SerializeCell(
    const data::CleaningDataset& ds, int row, int col,
    const std::string* replace) const {
  const std::string& value =
      replace != nullptr ? *replace : ds.dirty.Cell(row, col);
  std::vector<text::AttrValue> attrs;
  if (!options_.contextual) {
    attrs.push_back({ds.dirty.attrs[static_cast<size_t>(col)], value});
  } else {
    // Contextual: serialize the whole row, substituting the candidate into
    // the target cell (§V-A).
    attrs = ds.dirty.RowAttrs(row);
    attrs[static_cast<size_t>(col)].second = value;
  }
  if (options_.profile_hints && profiles_ != nullptr) {
    attrs.push_back({"vfreq", profiles_->FrequencyBucket(col, value)});
    const std::string implied = vicinity_->ImpliedValue(ds.dirty, row, col);
    std::string fd_state = "none";
    if (!implied.empty()) fd_state = implied == value ? "agree" : "clash";
    attrs.push_back({"fdok", fd_state});
  }
  return text::SerializeAttrs(attrs);
}

CleaningRunResult CleaningPipeline::Run(const data::CleaningDataset& ds) {
  WallTimer total_timer;
  CleaningRunResult result;
  Rng rng(options_.seed * 6121 + 7);
  const int n_rows = ds.dirty.num_rows();
  const int n_cols = ds.dirty.num_attrs();
  if (options_.profile_hints) {
    profiles_ = std::make_unique<data::ColumnProfiles>(ds.dirty);
    vicinity_ = std::make_unique<data::VicinityModel>(ds.dirty);
  }
  data::CharBigramModel bigrams(ds.dirty);
  // Dense per-pair profiling features for the matcher head (side input):
  // {freq(cand), freq(cur), edit_sim(cur, cand), vicinity(cand),
  //  vicinity(cur), cur is empty, bigram_ll(cand), bigram_ll(cur)}.
  // The bigram log-likelihoods are the label-free well-formedness signal
  // that makes typos in unique-value columns detectable (DESIGN.md §1.2).
  auto side_features = [&](int r, int c, const std::string& cur,
                           const std::string& cand) -> std::vector<float> {
    if (!options_.profile_hints) return {};
    return {static_cast<float>(profiles_->Frequency(c, cand)),
            static_cast<float>(profiles_->Frequency(c, cur)),
            static_cast<float>(sparse::EditSimilarity(cur, cand)),
            static_cast<float>(vicinity_->Agreement(ds.dirty, r, c, cand)),
            static_cast<float>(vicinity_->Agreement(ds.dirty, r, c, cur)),
            cur.empty() ? 1.0f : 0.0f,
            static_cast<float>(bigrams.Score(c, cand)),
            static_cast<float>(bigrams.Score(c, cur))};
  };

  // --- corpus: every cell and every candidate correction -----------------
  std::vector<std::vector<std::string>> corpus;
  for (int r = 0; r < n_rows; ++r) {
    for (int c = 0; c < n_cols; ++c) {
      corpus.push_back(SerializeCell(ds, r, c, nullptr));
      // One serialized candidate per cell keeps the corpus size sane; the
      // paper caps the corpus anyway (§VI-A2).
      const auto& cands =
          ds.candidates[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (!cands.empty()) {
        const std::string& cand = cands[static_cast<size_t>(
            rng.UniformInt(static_cast<int>(cands.size())))];
        corpus.push_back(SerializeCell(ds, r, c, &cand));
      }
    }
  }
  text::Vocab vocab = text::Vocab::Build(corpus, options_.vocab_size);
  std::unique_ptr<index::EmbeddingCache> cache;
  if (options_.embedding_cache_capacity > 0) {
    cache = std::make_unique<index::EmbeddingCache>(
        options_.embedding_cache_capacity, /*num_shards=*/8,
        options_.embedding_cache_storage);
  }
  auto encoder =
      MakeEncoder(options_.encoder_kind, vocab.size(), options_.encoder_dim,
                  options_.max_len, options_.seed, options_.pool,
                  options_.num_threads, cache.get());

  if (!options_.skip_pretrain) {
    contrastive::PretrainOptions popts = options_.pretrain;
    popts.seed = options_.seed * 131 + 3;
    popts.num_threads = options_.train_num_threads;
    popts.pool = options_.pool;
    contrastive::Pretrainer pretrainer(encoder.get(), &vocab, popts);
    SUDO_CHECK_OK(pretrainer.Run(corpus));
    result.pretrain_seconds = pretrainer.stats().seconds;
  }

  // --- 20 uniformly sampled labeled rows --> training pairs ---------------
  std::vector<int> rows = rng.SampleWithoutReplacement(
      n_rows, std::min(options_.labeled_rows, n_rows));
  std::vector<bool> is_labeled(static_cast<size_t>(n_rows), false);
  for (int r : rows) is_labeled[static_cast<size_t>(r)] = true;

  std::vector<matcher::PairExample> train_examples;
  const std::vector<data::ErrorType> kSynthTypes = {
      data::ErrorType::kTypo, data::ErrorType::kFormatIssue,
      data::ErrorType::kMissingValue};
  for (int r : rows) {
    for (int c = 0; c < n_cols; ++c) {
      const auto& cands =
          ds.candidates[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (cands.empty()) continue;
      const std::string& truth = ds.clean.Cell(r, c);
      // Real signal: the cell's own candidates, positives kept, negatives
      // capped for class balance.
      std::vector<int> keep;
      std::vector<int> negatives;
      for (size_t k = 0; k < cands.size(); ++k) {
        if (cands[k] == truth) {
          keep.push_back(static_cast<int>(k));
        } else {
          negatives.push_back(static_cast<int>(k));
        }
      }
      rng.Shuffle(&negatives);
      for (int k : negatives) {
        if (static_cast<int>(keep.size()) >= options_.max_train_candidates) {
          break;
        }
        keep.push_back(k);
      }
      for (int k : keep) {
        matcher::PairExample ex;
        ex.x = SerializeCell(ds, r, c, nullptr);
        ex.y = SerializeCell(ds, r, c, &cands[static_cast<size_t>(k)]);
        ex.label = cands[static_cast<size_t>(k)] == truth ? 1 : 0;
        ex.side = side_features(r, c, ds.dirty.Cell(r, c),
                                cands[static_cast<size_t>(k)]);
        train_examples.push_back(std::move(ex));
      }
      // Synthetic signal: labeled rows reveal the true value of every one
      // of their cells, so (corrupted(truth), truth) is a known-positive
      // pair and (corrupted(truth), other-candidate) known negatives.
      // This is the matching-formulation analogue of how Baran updates its
      // correctors from the labeled tuples, and it is what makes 20 rows
      // enough supervision despite the ~3-16% error rates.
      {
        const data::ErrorType type = kSynthTypes[static_cast<size_t>(
            rng.UniformInt(static_cast<int>(kSynthTypes.size())))];
        const std::string corrupted = data::CorruptValue(truth, type, &rng);
        matcher::PairExample pos;
        pos.x = SerializeCell(ds, r, c, &corrupted);
        pos.y = SerializeCell(ds, r, c, &truth);
        pos.label = 1;
        pos.side = side_features(r, c, corrupted, truth);
        train_examples.push_back(std::move(pos));
        int added = 0;
        for (const auto& cand : cands) {
          if (cand == truth) continue;
          matcher::PairExample neg;
          neg.x = SerializeCell(ds, r, c, &corrupted);
          neg.y = SerializeCell(ds, r, c, &cand);
          neg.label = 0;
          neg.side = side_features(r, c, corrupted, cand);
          train_examples.push_back(std::move(neg));
          if (++added >= 2) break;
        }
        // Identity calibration: a well-formed value is its own correction
        // (positive), a corrupted value is not (negative). At correction
        // time the winning candidate must beat the cell's identity score,
        // which implements "the cell is considered clean if r_i = r'_i"
        // with a learned notion of well-formedness.
        matcher::PairExample id_pos;
        id_pos.x = SerializeCell(ds, r, c, &truth);
        id_pos.y = id_pos.x;
        id_pos.label = 1;
        id_pos.side = side_features(r, c, truth, truth);
        train_examples.push_back(std::move(id_pos));
        matcher::PairExample id_neg;
        id_neg.x = SerializeCell(ds, r, c, &corrupted);
        id_neg.y = id_neg.x;
        id_neg.label = 0;
        id_neg.side = side_features(r, c, corrupted, corrupted);
        train_examples.push_back(std::move(id_neg));
      }
    }
  }

  matcher::FinetuneOptions fopts = options_.finetune;
  if (fopts.epochs < 25) fopts.epochs = 25;  // head-only training is cheap
  fopts.seed = options_.seed * 17 + 9;
  fopts.select_best_epoch = false;  // no validation labels in this setting
  if (options_.profile_hints) fopts.side_dim = kSideDim;
  // 20 labeled rows produce a tiny, token-disjoint training set; training
  // the encoder on it memorizes rather than generalizes, so only the head
  // is trained on top of the frozen contrastive representations.
  fopts.freeze_encoder = true;
  fopts.mlp_head = true;
  matcher::PairMatcher pm(encoder.get(), &vocab, fopts);
  SUDO_CHECK_OK(pm.Train(train_examples, {}));
  result.finetune_seconds = pm.train_seconds();

  // --- correction on the remaining rows -----------------------------------
  // Batch all (cell, candidate) pairs, then take per-cell argmax.
  struct CellRef {
    int row, col;
    int first_pair, n_pairs;  // candidate pairs; the identity pair follows
  };
  std::vector<CellRef> cells;
  std::vector<matcher::PairExample> eval_pairs;
  std::vector<const std::string*> pair_candidate;
  for (int r = 0; r < n_rows; ++r) {
    if (is_labeled[static_cast<size_t>(r)]) continue;
    for (int c = 0; c < n_cols; ++c) {
      const auto& cands =
          ds.candidates[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (cands.empty()) continue;
      CellRef ref{r, c, static_cast<int>(eval_pairs.size()),
                  static_cast<int>(cands.size())};
      for (const auto& cand : cands) {
        matcher::PairExample ex;
        ex.x = SerializeCell(ds, r, c, nullptr);
        ex.y = SerializeCell(ds, r, c, &cand);
        ex.side = side_features(r, c, ds.dirty.Cell(r, c), cand);
        eval_pairs.push_back(std::move(ex));
        pair_candidate.push_back(&cand);
      }
      // Identity pair: "is the current value its own correction?"
      matcher::PairExample id;
      id.x = SerializeCell(ds, r, c, nullptr);
      id.y = id.x;
      id.side =
          side_features(r, c, ds.dirty.Cell(r, c), ds.dirty.Cell(r, c));
      eval_pairs.push_back(std::move(id));
      pair_candidate.push_back(nullptr);
      cells.push_back(ref);
    }
  }
  std::vector<float> probs = pm.PredictProba(eval_pairs);

  int corrections_made = 0, corrections_right = 0, true_errors = 0;
  for (int r = 0; r < n_rows; ++r) {
    if (is_labeled[static_cast<size_t>(r)]) continue;
    for (int c = 0; c < n_cols; ++c) {
      if (ds.IsError(r, c)) ++true_errors;
    }
  }
  for (const auto& cell : cells) {
    float best_prob = -1.0f;
    int best = -1;
    for (int k = 0; k < cell.n_pairs; ++k) {
      const float p = probs[static_cast<size_t>(cell.first_pair + k)];
      if (p > best_prob) {
        best_prob = p;
        best = cell.first_pair + k;
      }
    }
    // The identity pair score is the learned "the cell is already clean"
    // confidence; a correction must both be affirmed (>= 0.5, §V-A's
    // M_pm(r_i, r'_i) = 1) and beat keeping the current value.
    const float keep_prob =
        probs[static_cast<size_t>(cell.first_pair + cell.n_pairs)];
    if (best < 0 || best_prob <= keep_prob - options_.correction_bias) {
      continue;
    }
    const std::string& proposed = *pair_candidate[static_cast<size_t>(best)];
    if (proposed == ds.dirty.Cell(cell.row, cell.col)) continue;
    ++corrections_made;
    if (ds.IsError(cell.row, cell.col) &&
        proposed == ds.clean.Cell(cell.row, cell.col)) {
      ++corrections_right;
    }
  }

  result.corrections_made = corrections_made;
  result.corrections_right = corrections_right;
  result.true_errors = true_errors;
  result.correction.precision =
      corrections_made > 0
          ? static_cast<double>(corrections_right) / corrections_made
          : 0.0;
  result.correction.recall =
      true_errors > 0 ? static_cast<double>(corrections_right) / true_errors
                      : 0.0;
  result.correction.f1 =
      (result.correction.precision + result.correction.recall) > 0.0
          ? 2.0 * result.correction.precision * result.correction.recall /
                (result.correction.precision + result.correction.recall)
          : 0.0;
  if (cache != nullptr) result.embed_cache = cache->stats();
  result.total_seconds = total_timer.ElapsedSeconds();
  return result;
}

}  // namespace sudowoodo::pipeline
