#include "baselines/deepmatcher.h"

#include "nn/gru.h"
#include "nn/optimizer.h"
#include "pipeline/em_pipeline.h"
#include "text/vocab.h"

namespace sudowoodo::baselines {

namespace ts = sudowoodo::tensor;

pipeline::PRF1 RunDeepMatcherOnEm(const data::EmDataset& ds,
                                  const DeepMatcherOptions& options) {
  // Corpus + vocab over both tables.
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < ds.table_a.num_rows(); ++i) {
    corpus.push_back(pipeline::EmPipeline::SerializeRow(ds.table_a, i));
  }
  for (int i = 0; i < ds.table_b.num_rows(); ++i) {
    corpus.push_back(pipeline::EmPipeline::SerializeRow(ds.table_b, i));
  }
  text::Vocab vocab = text::Vocab::Build(corpus, 6000);

  std::unique_ptr<nn::Encoder> encoder;
  if (options.use_gru) {
    nn::GruConfig config;
    config.vocab_size = vocab.size();
    config.dim = options.dim;
    config.max_len = options.max_len;
    config.seed = options.seed;
    encoder = std::make_unique<nn::GruEncoder>(config);
  } else {
    nn::FastBagConfig config;
    config.vocab_size = vocab.size();
    config.dim = options.dim;
    config.max_len = options.max_len;
    config.hidden_dim = 2 * options.dim;
    config.seed = options.seed;
    encoder = std::make_unique<nn::FastBagEncoder>(config);
  }

  // Similarity-feature head: [Zx, Zy, |Zx-Zy|, Zx*Zy] -> MLP -> 2.
  Rng rng(options.seed + 1);
  nn::Mlp head(4 * options.dim, 2 * options.dim, 2, &rng);

  std::vector<ts::Tensor> params = encoder->Parameters();
  nn::AppendParameters(&params, head.Parameters());
  nn::AdamWOptions aopts;
  aopts.lr = options.lr;
  nn::AdamW optimizer(params, aopts);

  auto forward = [&](const std::vector<const data::LabeledPair*>& batch,
                     bool training) {
    std::vector<std::vector<int>> x_ids, y_ids;
    for (const auto* p : batch) {
      x_ids.push_back(vocab.Encode(
          pipeline::EmPipeline::SerializeRow(ds.table_a, p->a_idx)));
      y_ids.push_back(vocab.Encode(
          pipeline::EmPipeline::SerializeRow(ds.table_b, p->b_idx)));
    }
    ts::Tensor zx = encoder->EncodeBatch(x_ids, nullptr, training);
    ts::Tensor zy = encoder->EncodeBatch(y_ids, nullptr, training);
    ts::Tensor feat = ts::ConcatCols(
        {zx, zy, ts::Abs(ts::Sub(zx, zy)), ts::Mul(zx, zy)});
    return head.Forward(feat);
  };

  // Train on the full training split (the "(full)" configuration).
  std::vector<int> order(ds.train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t b = 0; b < order.size();
         b += static_cast<size_t>(options.batch_size)) {
      const size_t end = std::min(
          order.size(), b + static_cast<size_t>(options.batch_size));
      std::vector<const data::LabeledPair*> batch;
      std::vector<int> labels;
      for (size_t i = b; i < end; ++i) {
        batch.push_back(&ds.train[static_cast<size_t>(order[i])]);
        labels.push_back(ds.train[static_cast<size_t>(order[i])].label);
      }
      ts::Tensor loss =
          ts::CrossEntropyWithLogits(forward(batch, true), labels);
      optimizer.ZeroGrad();
      ts::Backward(loss);
      optimizer.ClipGradNorm(5.0f);
      optimizer.Step();
    }
  }

  // Evaluate on test.
  ts::NoGradGuard ng;
  std::vector<int> preds, labels;
  for (size_t b = 0; b < ds.test.size();
       b += static_cast<size_t>(options.batch_size)) {
    const size_t end =
        std::min(ds.test.size(), b + static_cast<size_t>(options.batch_size));
    std::vector<const data::LabeledPair*> batch;
    for (size_t i = b; i < end; ++i) batch.push_back(&ds.test[i]);
    ts::Tensor probs = ts::RowSoftmax(forward(batch, false));
    for (int i = 0; i < probs.rows(); ++i) {
      preds.push_back(probs.at(i, 1) >= 0.5f ? 1 : 0);
    }
  }
  for (const auto& p : ds.test) labels.push_back(p.label);
  return pipeline::ComputePRF1(preds, labels);
}

}  // namespace sudowoodo::baselines
