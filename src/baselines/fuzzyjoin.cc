#include "baselines/fuzzyjoin.h"

#include <algorithm>
#include <map>

#include "common/parallel.h"
#include "sparse/tfidf.h"
#include "text/tokenizer.h"

namespace sudowoodo::baselines {

pipeline::PRF1 RunAutoFuzzyJoinOnEm(const data::EmDataset& ds,
                                    const FuzzyJoinOptions& options) {
  // TF-IDF vectors over the *join key column* (the first attribute: the
  // entity name/title), as a fuzzy join programs its similarity over join
  // keys rather than whole records. Reference table = A.
  std::vector<std::vector<std::string>> tokens_a, tokens_b;
  for (int i = 0; i < ds.table_a.num_rows(); ++i) {
    tokens_a.push_back(text::Tokenize(ds.table_a.Cell(i, 0)));
  }
  for (int i = 0; i < ds.table_b.num_rows(); ++i) {
    tokens_b.push_back(text::Tokenize(ds.table_b.Cell(i, 0)));
  }
  sparse::TfIdfFeaturizer tfidf;
  {
    auto corpus = tokens_a;
    corpus.insert(corpus.end(), tokens_b.begin(), tokens_b.end());
    tfidf.Fit(corpus);
  }
  std::vector<sparse::SparseVector> vec_a, vec_b;
  for (const auto& t : tokens_a) vec_a.push_back(tfidf.Transform(t));
  for (const auto& t : tokens_b) vec_b.push_back(tfidf.Transform(t));

  // For each B record: best and second-best reference similarity. The
  // all-pairs scoring pass is the baseline's hot loop; rows of B fan out
  // across the pool in fixed contiguous shards, each writing only its own
  // best/second/best_ref slots, so the result is bit-identical to serial
  // (enforced at {1,2,4} threads by tests/parallel_test.cc).
  const int nb = ds.table_b.num_rows();
  std::vector<double> best(static_cast<size_t>(nb), 0.0);
  std::vector<double> second(static_cast<size_t>(nb), 0.0);
  std::vector<int> best_ref(static_cast<size_t>(nb), -1);
  ParallelFor(nb, options.num_threads, [&](int64_t begin, int64_t end,
                                           int /*shard*/) {
    for (int64_t b = begin; b < end; ++b) {
      for (int a = 0; a < ds.table_a.num_rows(); ++a) {
        const double s = sparse::SparseDot(vec_a[static_cast<size_t>(a)],
                                           vec_b[static_cast<size_t>(b)]);
        if (s > best[static_cast<size_t>(b)]) {
          second[static_cast<size_t>(b)] = best[static_cast<size_t>(b)];
          best[static_cast<size_t>(b)] = s;
          best_ref[static_cast<size_t>(b)] = a;
        } else if (s > second[static_cast<size_t>(b)]) {
          second[static_cast<size_t>(b)] = s;
        }
      }
    }
  });

  // Threshold auto-selection: under the reference-table assumption a
  // joined pair is likely wrong when the runner-up is nearly as similar as
  // the winner (ambiguity). Estimated precision at threshold t = fraction
  // of joins above t whose margin best-second is clear.
  double chosen_t = 1.0;
  double best_yield = -1.0;
  for (int step = 0; step <= options.threshold_steps; ++step) {
    const double t =
        0.2 + 0.75 * static_cast<double>(step) / options.threshold_steps;
    int64_t joined = 0, confident = 0;
    for (int b = 0; b < nb; ++b) {
      if (best[static_cast<size_t>(b)] < t) continue;
      ++joined;
      if (best[static_cast<size_t>(b)] - second[static_cast<size_t>(b)] >
          0.1 * best[static_cast<size_t>(b)]) {
        ++confident;
      }
    }
    if (joined == 0) continue;
    const double est_precision =
        static_cast<double>(confident) / static_cast<double>(joined);
    if (est_precision >= options.target_precision &&
        static_cast<double>(joined) > best_yield) {
      best_yield = static_cast<double>(joined);
      chosen_t = t;
    }
  }

  // Evaluate on the test split: predict match iff the pair is the chosen
  // join partner above the threshold.
  std::vector<int> preds, labels;
  preds.reserve(ds.test.size());
  labels.reserve(ds.test.size());
  for (const auto& p : ds.test) {
    const bool match = best_ref[static_cast<size_t>(p.b_idx)] == p.a_idx &&
                       best[static_cast<size_t>(p.b_idx)] >= chosen_t;
    preds.push_back(match ? 1 : 0);
    labels.push_back(p.label);
  }
  return pipeline::ComputePRF1(preds, labels);
}

}  // namespace sudowoodo::baselines
