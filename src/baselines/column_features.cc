#include "baselines/column_features.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "common/string_util.h"
#include "text/tokenizer.h"

namespace sudowoodo::baselines {

namespace {

constexpr int kWordHashDim = 48;
constexpr int kTopicHashDim = 24;

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void L2Normalize(std::vector<double>* v, size_t begin, size_t end) {
  double n = 0.0;
  for (size_t i = begin; i < end; ++i) n += (*v)[i] * (*v)[i];
  n = std::sqrt(n);
  if (n > 1e-12) {
    for (size_t i = begin; i < end; ++i) (*v)[i] /= n;
  }
}

}  // namespace

std::vector<double> SherlockFeatures(const data::Column& column) {
  std::vector<double> f;
  const auto& values = column.values;
  const double n = std::max<size_t>(1, values.size());

  // --- value-shape statistics ---------------------------------------------
  double len_sum = 0.0, len_sq = 0.0;
  double digits = 0.0, alphas = 0.0, spaces = 0.0, punct = 0.0, total = 0.0;
  double numeric_values = 0.0, empty_values = 0.0;
  double word_count = 0.0;
  std::set<std::string> distinct;
  for (const auto& v : values) {
    len_sum += static_cast<double>(v.size());
    len_sq += static_cast<double>(v.size()) * v.size();
    for (char c : v) {
      ++total;
      if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
      else if (std::isalpha(static_cast<unsigned char>(c))) ++alphas;
      else if (c == ' ') ++spaces;
      else ++punct;
    }
    if (IsNumeric(v)) ++numeric_values;
    if (v.empty()) ++empty_values;
    word_count += static_cast<double>(SplitString(v, " ").size());
    distinct.insert(v);
  }
  const double len_mean = len_sum / n;
  const double len_var = std::max(0.0, len_sq / n - len_mean * len_mean);
  total = std::max(1.0, total);
  f.push_back(len_mean / 32.0);
  f.push_back(std::sqrt(len_var) / 16.0);
  f.push_back(digits / total);
  f.push_back(alphas / total);
  f.push_back(spaces / total);
  f.push_back(punct / total);
  f.push_back(numeric_values / n);
  f.push_back(empty_values / n);
  f.push_back(word_count / n / 6.0);
  f.push_back(static_cast<double>(distinct.size()) / n);

  // --- hashed bag-of-words embedding (the word2vec analogue) --------------
  const size_t words_begin = f.size();
  f.resize(words_begin + kWordHashDim, 0.0);
  for (const auto& v : values) {
    for (const auto& tok : text::Tokenize(v)) {
      const uint64_t h = Fnv1a(tok);
      const size_t slot = words_begin + h % kWordHashDim;
      f[slot] += (h >> 32) % 2 == 0 ? 1.0 : -1.0;  // signed hashing
    }
  }
  L2Normalize(&f, words_begin, f.size());
  return f;
}

std::vector<double> SatoFeatures(const data::Column& column) {
  std::vector<double> f = SherlockFeatures(column);
  // Topic context: hashed character trigrams over the whole column (the
  // LDA-topic analogue in Sato).
  const size_t begin = f.size();
  f.resize(begin + kTopicHashDim, 0.0);
  std::string joined;
  for (const auto& v : column.values) {
    joined += v;
    joined += ' ';
  }
  for (size_t i = 0; i + 3 <= joined.size(); ++i) {
    const uint64_t h = Fnv1a(joined.substr(i, 3));
    f[begin + h % kTopicHashDim] += 1.0;
  }
  L2Normalize(&f, begin, f.size());
  return f;
}

std::vector<double> ColumnPairFeatures(const std::vector<double>& v1,
                                       const std::vector<double>& v2) {
  std::vector<double> out;
  out.reserve(3 * v1.size());
  out.insert(out.end(), v1.begin(), v1.end());
  out.insert(out.end(), v2.begin(), v2.end());
  for (size_t i = 0; i < v1.size(); ++i) {
    out.push_back(std::fabs(v1[i] - v2[i]));
  }
  return out;
}

double FeatureCosine(const std::vector<double>& v1,
                     const std::vector<double>& v2) {
  double dot = 0.0, n1 = 0.0, n2 = 0.0;
  for (size_t i = 0; i < v1.size(); ++i) {
    dot += v1[i] * v2[i];
    n1 += v1[i] * v1[i];
    n2 += v2[i] * v2[i];
  }
  if (n1 <= 0.0 || n2 <= 0.0) return 0.0;
  return dot / (std::sqrt(n1) * std::sqrt(n2));
}

}  // namespace sudowoodo::baselines
