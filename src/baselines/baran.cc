#include "baselines/baran.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "baselines/classifiers.h"
#include "common/string_util.h"
#include "sparse/similarity.h"

namespace sudowoodo::baselines {

namespace {

/// Column-level statistics shared by the detector and the corrector.
struct ColumnStats {
  std::unordered_map<std::string, int> freq;
  double avg_len = 0.0;
  double numeric_frac = 0.0;
};

std::vector<ColumnStats> ComputeStats(const data::Table& table) {
  std::vector<ColumnStats> stats(static_cast<size_t>(table.num_attrs()));
  for (int c = 0; c < table.num_attrs(); ++c) {
    auto& s = stats[static_cast<size_t>(c)];
    double len = 0.0, numeric = 0.0;
    for (int r = 0; r < table.num_rows(); ++r) {
      const std::string& v = table.Cell(r, c);
      ++s.freq[v];
      len += static_cast<double>(v.size());
      if (IsNumeric(v)) numeric += 1.0;
    }
    s.avg_len = len / table.num_rows();
    s.numeric_frac = numeric / table.num_rows();
  }
  return stats;
}

/// Baran's "vicinity model": for every column pair (c2 -> c), the majority
/// value of c among rows sharing the row's value at c2. VAD errors are
/// exactly the cases where the FD-implied majority disagrees with the cell.
class VicinityModel {
 public:
  explicit VicinityModel(const data::Table& table) : n_cols_(table.num_attrs()) {
    votes_.resize(static_cast<size_t>(n_cols_) * n_cols_);
    for (int r = 0; r < table.num_rows(); ++r) {
      for (int c2 = 0; c2 < n_cols_; ++c2) {
        for (int c = 0; c < n_cols_; ++c) {
          if (c == c2) continue;
          votes_[static_cast<size_t>(c2) * n_cols_ + c][table.Cell(r, c2)]
                [table.Cell(r, c)]++;
        }
      }
    }
  }

  /// Fraction of context columns whose majority co-occurring value for
  /// `col` equals `cand`.
  double Agreement(const data::Table& dirty, int row, int col,
                   const std::string& cand) const {
    int contexts = 0, agree = 0;
    for (int c2 = 0; c2 < n_cols_; ++c2) {
      if (c2 == col) continue;
      const auto& by_value =
          votes_[static_cast<size_t>(c2) * n_cols_ + col];
      auto it = by_value.find(dirty.Cell(row, c2));
      if (it == by_value.end() || it->second.size() < 1) continue;
      // Majority value must be dominant (appear >= 2x) to count as a
      // dependable context.
      const std::string* best = nullptr;
      int best_n = 0, total = 0;
      for (const auto& [v, cnt] : it->second) {
        total += cnt;
        if (cnt > best_n) {
          best_n = cnt;
          best = &v;
        }
      }
      if (best == nullptr || best_n * 2 <= total || total < 3) continue;
      ++contexts;
      if (*best == cand) ++agree;
    }
    return contexts > 0 ? static_cast<double>(agree) / contexts : 0.0;
  }

 private:
  int n_cols_;
  std::vector<std::unordered_map<std::string,
                                 std::unordered_map<std::string, int>>>
      votes_;
};

/// Per-(cell, candidate) feature vector for the Baran combiner.
std::vector<double> CorrectionFeatures(const data::CleaningDataset& ds,
                                       const std::vector<ColumnStats>& stats,
                                       const VicinityModel& vicinity, int row,
                                       int col, const std::string& cur,
                                       const std::string& cand) {
  const ColumnStats& s = stats[static_cast<size_t>(col)];
  const double n = std::max(1, ds.dirty.num_rows());
  auto it = s.freq.find(cand);
  const double cand_freq = it == s.freq.end() ? 0.0 : it->second / n;
  const double edit_sim = sparse::EditSimilarity(cur, cand);
  const double len_agree =
      1.0 - std::min(1.0, std::fabs(static_cast<double>(cand.size()) -
                                    s.avg_len) /
                              std::max(1.0, s.avg_len));
  const double numeric_agree =
      (IsNumeric(cand) ? 1.0 : 0.0) * s.numeric_frac +
      (IsNumeric(cand) ? 0.0 : 1.0) * (1.0 - s.numeric_frac);
  const double is_empty_cur = cur.empty() ? 1.0 : 0.0;
  const double vicinity_agree = vicinity.Agreement(ds.dirty, row, col, cand);
  const double cur_freq = [&] {
    auto cit = s.freq.find(cur);
    return cit == s.freq.end() ? 0.0 : cit->second / n;
  }();
  return {cand_freq,     edit_sim, len_agree, numeric_agree,
          is_empty_cur,  vicinity_agree, cand_freq - cur_freq};
}

}  // namespace

std::vector<std::vector<bool>> RahaDetectErrors(
    const data::CleaningDataset& ds) {
  const int n_rows = ds.dirty.num_rows();
  const int n_cols = ds.dirty.num_attrs();
  std::vector<ColumnStats> stats = ComputeStats(ds.dirty);
  VicinityModel vicinity(ds.dirty);
  std::vector<std::vector<bool>> flags(
      static_cast<size_t>(n_rows),
      std::vector<bool>(static_cast<size_t>(n_cols), false));
  for (int r = 0; r < n_rows; ++r) {
    for (int c = 0; c < n_cols; ++c) {
      const std::string& v = ds.dirty.Cell(r, c);
      const ColumnStats& s = stats[static_cast<size_t>(c)];
      int votes = 0;
      // Detector 1: missing value.
      if (v.empty()) votes += 2;
      // Detector 2: near-duplicate typo pattern - a unique value within
      // edit distance 2 of a strictly more frequent value in the column.
      auto it = s.freq.find(v);
      if (!v.empty() && it != s.freq.end() && it->second == 1) {
        for (const auto& [other, cnt] : s.freq) {
          if (cnt >= 3 && other != v &&
              EditDistance(other, v) <= 2) {
            votes += 2;
            break;
          }
        }
      }
      // Detector 3: type clash with the column majority.
      if (s.numeric_frac > 0.8 && !v.empty() && !IsNumeric(v)) votes += 2;
      // Detector 4: FD violation - the row's context columns strongly
      // imply a different value.
      if (!v.empty()) {
        const double self_agree = vicinity.Agreement(ds.dirty, r, c, v);
        double best_other = 0.0;
        // Any dependable context majority disagreeing with v?
        for (const auto& [other, cnt] : s.freq) {
          if (other == v || cnt < 2) continue;
          const double a = vicinity.Agreement(ds.dirty, r, c, other);
          best_other = std::max(best_other, a);
          if (best_other > self_agree) break;
        }
        if (best_other > self_agree && best_other > 0.0) votes += 2;
      }
      // Detector 5: length outlier.
      if (!v.empty() &&
          std::fabs(static_cast<double>(v.size()) - s.avg_len) >
              2.5 * std::max(2.0, s.avg_len * 0.5)) {
        ++votes;
      }
      flags[static_cast<size_t>(r)][static_cast<size_t>(c)] = votes >= 2;
    }
  }
  return flags;
}

pipeline::PRF1 RunBaranOnCleaning(const data::CleaningDataset& ds,
                                  const BaranOptions& options) {
  Rng rng(options.seed);
  const int n_rows = ds.dirty.num_rows();
  const int n_cols = ds.dirty.num_attrs();
  std::vector<ColumnStats> stats = ComputeStats(ds.dirty);
  VicinityModel vicinity(ds.dirty);

  // Error detection.
  std::vector<std::vector<bool>> flags;
  if (options.ed_mode == EdMode::kPerfect) {
    flags.assign(static_cast<size_t>(n_rows),
                 std::vector<bool>(static_cast<size_t>(n_cols), false));
    for (const auto& e : ds.errors) {
      flags[static_cast<size_t>(e.row)][static_cast<size_t>(e.col)] = true;
    }
  } else {
    flags = RahaDetectErrors(ds);
  }

  // Labeled rows -> training set for the combiner.
  std::vector<int> rows = rng.SampleWithoutReplacement(
      n_rows, std::min(options.labeled_rows, n_rows));
  std::vector<bool> is_labeled(static_cast<size_t>(n_rows), false);
  for (int r : rows) is_labeled[static_cast<size_t>(r)] = true;

  FeatureMatrix x;
  std::vector<int> y;
  const std::vector<data::ErrorType> kSynthTypes = {
      data::ErrorType::kTypo, data::ErrorType::kFormatIssue,
      data::ErrorType::kMissingValue};
  for (int r : rows) {
    for (int c = 0; c < n_cols; ++c) {
      const auto& cands =
          ds.candidates[static_cast<size_t>(r)][static_cast<size_t>(c)];
      const std::string& truth = ds.clean.Cell(r, c);
      const std::string& cur = ds.dirty.Cell(r, c);
      // Real signal from the labeled cell's own candidate set.
      int negs = 0;
      for (const auto& cand : cands) {
        const bool pos = cand == truth;
        if (!pos && ++negs > 4) continue;
        x.push_back(CorrectionFeatures(ds, stats, vicinity, r, c, cur, cand));
        y.push_back(pos ? 1 : 0);
      }
      // Synthetic signal: the labeled row certifies `truth`, so corrupting
      // it yields known (dirty, correction) pairs - Baran's corrector
      // update from labeled tuples.
      const data::ErrorType type = kSynthTypes[static_cast<size_t>(
          rng.UniformInt(static_cast<int>(kSynthTypes.size())))];
      const std::string corrupted = data::CorruptValue(truth, type, &rng);
      x.push_back(
          CorrectionFeatures(ds, stats, vicinity, r, c, corrupted, truth));
      y.push_back(1);
      int synth_negs = 0;
      for (const auto& cand : cands) {
        if (cand == truth) continue;
        x.push_back(
            CorrectionFeatures(ds, stats, vicinity, r, c, corrupted, cand));
        y.push_back(0);
        if (++synth_negs >= 3) break;
      }
    }
  }
  // Degenerate guard: need at least one positive and one negative.
  bool has_pos = false, has_neg = false;
  for (int v : y) (v == 1 ? has_pos : has_neg) = true;
  GradientBoostedTrees combiner;
  if (has_pos && has_neg) combiner.Fit(x, y);

  // Correct flagged cells on the evaluation rows.
  int made = 0, right = 0, true_errors = 0;
  for (int r = 0; r < n_rows; ++r) {
    if (is_labeled[static_cast<size_t>(r)]) continue;
    for (int c = 0; c < n_cols; ++c) {
      if (ds.IsError(r, c)) ++true_errors;
      if (!flags[static_cast<size_t>(r)][static_cast<size_t>(c)]) continue;
      const auto& cands =
          ds.candidates[static_cast<size_t>(r)][static_cast<size_t>(c)];
      if (cands.empty() || !(has_pos && has_neg)) continue;
      double best_p = -1.0;
      const std::string* best = nullptr;
      for (const auto& cand : cands) {
        const double p = combiner.PredictProba(CorrectionFeatures(
            ds, stats, vicinity, r, c, ds.dirty.Cell(r, c), cand));
        if (p > best_p) {
          best_p = p;
          best = &cand;
        }
      }
      // ED already declared the cell dirty; EC commits to the argmax
      // candidate (Baran semantics), requiring only minimal confidence.
      if (best == nullptr || best_p < 0.2) continue;
      ++made;
      if (ds.IsError(r, c) && *best == ds.clean.Cell(r, c)) ++right;
    }
  }

  pipeline::PRF1 out;
  out.precision = made > 0 ? static_cast<double>(right) / made : 0.0;
  out.recall =
      true_errors > 0 ? static_cast<double>(right) / true_errors : 0.0;
  out.f1 = (out.precision + out.recall) > 0.0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

}  // namespace sudowoodo::baselines
