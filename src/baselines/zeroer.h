// ZeroER-style unsupervised entity matching (Wu et al., SIGMOD 2020), one
// of the two unsupervised baselines of Table VI.
//
// ZeroER models pairwise similarity feature vectors as a 2-component
// Gaussian mixture (match / non-match generative assumption) learned with
// EM, with no labeled examples. This reimplementation uses the similarity
// features of sparse/similarity.h plus TF-IDF cosine, diagonal-covariance
// Gaussians, and component identification by mean similarity.

#ifndef SUDOWOODO_BASELINES_ZEROER_H_
#define SUDOWOODO_BASELINES_ZEROER_H_

#include <vector>

#include "baselines/classifiers.h"
#include "data/em_dataset.h"
#include "pipeline/metrics.h"

namespace sudowoodo::baselines {

/// Options for ZeroEr.
struct ZeroErOptions {
  int em_iters = 30;
  double prior_match = 0.1;  // initial mixture weight of the match class
  uint64_t seed = 17;
  // Shards the per-pair loops (E-step posteriors, batch prediction, pair
  // featurization) over the global thread pool. Every parallel loop
  // writes disjoint pre-sized slots - no cross-pair reductions move off
  // the serial path - so results are bit-identical for any thread count.
  int num_threads = 1;
};

/// Diagonal-covariance 2-component GMM over pair features.
class ZeroEr {
 public:
  explicit ZeroEr(const ZeroErOptions& options = {}) : options_(options) {}

  /// Fits the mixture on unlabeled pair features.
  void Fit(const FeatureMatrix& features);

  /// Posterior probability of the match component.
  double PredictProba(const std::vector<double>& x) const;

  /// Thresholded per-row predictions; rows are scored independently in
  /// parallel (options.num_threads), bit-identical to serial.
  std::vector<int> PredictBatch(const FeatureMatrix& x) const;

 private:
  ZeroErOptions options_;
  std::vector<double> mean_[2], var_[2];
  double weight_[2] = {0.5, 0.5};
  int match_component_ = 1;
};

/// Runs ZeroER end-to-end on an EM dataset: features over the labeled-pair
/// universe, unsupervised fit, evaluation on the test split.
pipeline::PRF1 RunZeroErOnEm(const data::EmDataset& ds,
                             const ZeroErOptions& options = {});

/// Pair feature extraction shared with Auto-FuzzyJoin: similarity features
/// + TF-IDF cosine over serialized rows. Per-row TF-IDF transforms and
/// per-pair feature builds shard over the global pool when
/// `num_threads > 1` (each index writes its own pre-sized slot, so the
/// output is bit-identical to serial).
FeatureMatrix EmPairFeatures(const data::EmDataset& ds,
                             const std::vector<data::LabeledPair>& pairs,
                             int num_threads = 1);

}  // namespace sudowoodo::baselines

#endif  // SUDOWOODO_BASELINES_ZEROER_H_
