// DeepMatcher-style matcher (Mudgal et al., SIGMOD 2018): the
// fully-supervised deep-learning comparison point of Tables V and XVIII.
//
// DeepMatcher encodes the two entities separately (RNN/attention
// summarizers in the original) and classifies similarity features of the
// two summaries. Here: a GRU or bag encoder produces Z_x and Z_y and an
// MLP classifies [Z_x, Z_y, |Z_x - Z_y|, Z_x ⊙ Z_y]. No LM pre-training
// and no pair cross-encoding - exactly the architectural gap the paper's
// comparison highlights.

#ifndef SUDOWOODO_BASELINES_DEEPMATCHER_H_
#define SUDOWOODO_BASELINES_DEEPMATCHER_H_

#include <memory>

#include "data/em_dataset.h"
#include "matcher/pair_matcher.h"
#include "pipeline/metrics.h"

namespace sudowoodo::baselines {

/// Options for the DeepMatcher run.
struct DeepMatcherOptions {
  /// true = GRU summarizer (faithful, slower); false = bag summarizer.
  bool use_gru = false;
  int dim = 48;
  int max_len = 48;
  int epochs = 10;
  int batch_size = 16;
  float lr = 1e-3f;
  uint64_t seed = 71;
};

/// Trains DeepMatcher on the dataset's full training split and evaluates
/// the test split ("DeepMatcher (full)" in Tables V / XVIII).
pipeline::PRF1 RunDeepMatcherOnEm(const data::EmDataset& ds,
                                  const DeepMatcherOptions& options = {});

}  // namespace sudowoodo::baselines

#endif  // SUDOWOODO_BASELINES_DEEPMATCHER_H_
