// Baran-style error correction (Mahdavi & Abedjan, VLDB 2020) and a
// Raha-style error detector (Mahdavi et al., SIGMOD 2019): the data
// cleaning baselines of Table VIII.
//
// Baran scores each (cell, candidate-correction) pair with an ensemble of
// feature extractors (value frequency, FD agreement, edit similarity,
// format agreement) and learns a combiner from ~20 labeled rows. Raha is
// an ensemble error detector; its imperfect detection is what separates
// the "Raha + Baran" row from the "Perfect ED + Baran" row.

#ifndef SUDOWOODO_BASELINES_BARAN_H_
#define SUDOWOODO_BASELINES_BARAN_H_

#include <vector>

#include "data/cleaning_dataset.h"
#include "pipeline/metrics.h"

namespace sudowoodo::baselines {

/// Error-detection mode for the Baran runs.
enum class EdMode {
  kRaha,     // ensemble detector (imperfect, like Raha)
  kPerfect,  // oracle detection of all dirty cells
};

/// Options for RunBaranOnCleaning.
struct BaranOptions {
  EdMode ed_mode = EdMode::kRaha;
  int labeled_rows = 20;
  uint64_t seed = 19;
};

/// Raha-style detector: flags cells as dirty via an ensemble of
/// format/frequency/FD-violation signals. Returns flags[row][col].
std::vector<std::vector<bool>> RahaDetectErrors(
    const data::CleaningDataset& ds);

/// Full Baran run: detect (per ed_mode), learn the corrector ensemble from
/// labeled rows, correct flagged cells, return EC P/R/F1 on the
/// non-labeled rows (the Table VIII protocol).
pipeline::PRF1 RunBaranOnCleaning(const data::CleaningDataset& ds,
                                  const BaranOptions& options);

}  // namespace sudowoodo::baselines

#endif  // SUDOWOODO_BASELINES_BARAN_H_
