#include "baselines/classifiers.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/status.h"

namespace sudowoodo::baselines {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

/// Standardizes features in place; returns {mean, scale}.
void FitStandardizer(const FeatureMatrix& x, std::vector<double>* mean,
                     std::vector<double>* scale) {
  SUDO_CHECK(!x.empty());
  const size_t d = x[0].size();
  mean->assign(d, 0.0);
  scale->assign(d, 0.0);
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) (*mean)[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) (*mean)[j] /= static_cast<double>(x.size());
  for (const auto& row : x) {
    for (size_t j = 0; j < d; ++j) {
      (*scale)[j] += (row[j] - (*mean)[j]) * (row[j] - (*mean)[j]);
    }
  }
  for (size_t j = 0; j < d; ++j) {
    (*scale)[j] = std::sqrt((*scale)[j] / static_cast<double>(x.size()));
    if ((*scale)[j] < 1e-9) (*scale)[j] = 1.0;
  }
}

std::vector<double> Standardize(const std::vector<double>& x,
                                const std::vector<double>& mean,
                                const std::vector<double>& scale) {
  std::vector<double> out(x.size());
  for (size_t j = 0; j < x.size(); ++j) out[j] = (x[j] - mean[j]) / scale[j];
  return out;
}

}  // namespace

std::vector<int> BinaryClassifier::PredictBatch(const FeatureMatrix& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(Predict(row));
  return out;
}

std::vector<double> BinaryClassifier::PredictProbaBatch(
    const FeatureMatrix& x) const {
  std::vector<double> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(PredictProba(row));
  return out;
}

// ---------------------------------------------------------------------------
// DecisionTree
// ---------------------------------------------------------------------------

void DecisionTree::Fit(const FeatureMatrix& x, const std::vector<double>& y,
                       const std::vector<int>& rows) {
  SUDO_CHECK(!rows.empty());
  nodes_.clear();
  Rng rng(options_.seed);
  std::vector<int> work = rows;
  Build(x, y, &work, 0, static_cast<int>(work.size()), 0, &rng);
}

int DecisionTree::Build(const FeatureMatrix& x, const std::vector<double>& y,
                        std::vector<int>* rows, int begin, int end, int depth,
                        Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const int n = end - begin;
  double sum = 0.0, sum2 = 0.0;
  for (int i = begin; i < end; ++i) {
    const double v = y[static_cast<size_t>((*rows)[static_cast<size_t>(i)])];
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  nodes_[static_cast<size_t>(node_id)].value = mean;
  if (depth >= options_.max_depth || n < 2 * options_.min_samples_leaf ||
      var < 1e-12) {
    return node_id;
  }

  const int d = static_cast<int>(x[0].size());
  int n_feats = options_.features_per_split;
  if (n_feats <= 0 || n_feats > d) n_feats = d;
  std::vector<int> feats = rng->SampleWithoutReplacement(d, n_feats);

  // Best split by weighted variance reduction.
  double best_score = var * n;  // parent SSE around means
  int best_feat = -1;
  double best_thresh = 0.0;
  std::vector<std::pair<double, double>> vals(static_cast<size_t>(n));
  for (int f : feats) {
    for (int i = begin; i < end; ++i) {
      const int row = (*rows)[static_cast<size_t>(i)];
      vals[static_cast<size_t>(i - begin)] = {
          x[static_cast<size_t>(row)][static_cast<size_t>(f)],
          y[static_cast<size_t>(row)]};
    }
    std::sort(vals.begin(), vals.end());
    // Prefix sums to evaluate every split point in O(n).
    double lsum = 0.0, lsum2 = 0.0;
    double tsum = 0.0, tsum2 = 0.0;
    for (const auto& [v, t] : vals) {
      (void)v;
      tsum += t;
      tsum2 += t * t;
    }
    for (int i = 0; i + 1 < n; ++i) {
      lsum += vals[static_cast<size_t>(i)].second;
      lsum2 += vals[static_cast<size_t>(i)].second *
               vals[static_cast<size_t>(i)].second;
      if (vals[static_cast<size_t>(i)].first ==
          vals[static_cast<size_t>(i + 1)].first) {
        continue;  // cannot split between equal values
      }
      const int nl = i + 1, nr = n - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
        continue;
      }
      const double rsum = tsum - lsum, rsum2 = tsum2 - lsum2;
      const double sse =
          (lsum2 - lsum * lsum / nl) + (rsum2 - rsum * rsum / nr);
      if (sse + 1e-12 < best_score) {
        best_score = sse;
        best_feat = f;
        best_thresh = 0.5 * (vals[static_cast<size_t>(i)].first +
                             vals[static_cast<size_t>(i + 1)].first);
      }
    }
  }
  if (best_feat < 0) return node_id;

  // Partition rows in place.
  auto mid_it = std::partition(
      rows->begin() + begin, rows->begin() + end, [&](int row) {
        return x[static_cast<size_t>(row)][static_cast<size_t>(best_feat)] <=
               best_thresh;
      });
  const int mid = static_cast<int>(mid_it - rows->begin());
  if (mid == begin || mid == end) return node_id;

  nodes_[static_cast<size_t>(node_id)].feature = best_feat;
  nodes_[static_cast<size_t>(node_id)].threshold = best_thresh;
  const int left = Build(x, y, rows, begin, mid, depth + 1, rng);
  nodes_[static_cast<size_t>(node_id)].left = left;
  const int right = Build(x, y, rows, mid, end, depth + 1, rng);
  nodes_[static_cast<size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::Predict(const std::vector<double>& x) const {
  SUDO_CHECK(!nodes_.empty());
  int cur = 0;
  while (nodes_[static_cast<size_t>(cur)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(cur)];
    cur = x[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                                 : node.right;
  }
  return nodes_[static_cast<size_t>(cur)].value;
}

// ---------------------------------------------------------------------------
// RandomForest
// ---------------------------------------------------------------------------

void RandomForest::Fit(const FeatureMatrix& x, const std::vector<int>& y) {
  SUDO_CHECK(x.size() == y.size() && !x.empty());
  trees_.clear();
  Rng rng(options_.seed);
  std::vector<double> yd(y.begin(), y.end());
  const int n = static_cast<int>(x.size());
  const int d = static_cast<int>(x[0].size());
  const int feats = std::max(1, static_cast<int>(std::sqrt(d)));
  for (int t = 0; t < options_.n_trees; ++t) {
    DecisionTree::Options topt;
    topt.max_depth = options_.max_depth;
    topt.min_samples_leaf = options_.min_samples_leaf;
    topt.features_per_split = feats;
    topt.seed = rng.NextU32();
    DecisionTree tree(topt);
    std::vector<int> bootstrap(static_cast<size_t>(n));
    for (auto& b : bootstrap) b = rng.UniformInt(n);
    tree.Fit(x, yd, bootstrap);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::PredictProba(const std::vector<double>& x) const {
  SUDO_CHECK(!trees_.empty());
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(x);
  return sum / static_cast<double>(trees_.size());
}

// ---------------------------------------------------------------------------
// GradientBoostedTrees
// ---------------------------------------------------------------------------

void GradientBoostedTrees::Fit(const FeatureMatrix& x,
                               const std::vector<int>& y) {
  SUDO_CHECK(x.size() == y.size() && !x.empty());
  trees_.clear();
  Rng rng(options_.seed);
  const int n = static_cast<int>(x.size());
  double pos = 0.0;
  for (int v : y) pos += v;
  const double p = std::clamp(pos / n, 1e-4, 1.0 - 1e-4);
  f0_ = std::log(p / (1.0 - p));

  std::vector<double> f(static_cast<size_t>(n), f0_);
  std::vector<int> all_rows(static_cast<size_t>(n));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<double> residual(static_cast<size_t>(n));
  for (int t = 0; t < options_.n_trees; ++t) {
    for (int i = 0; i < n; ++i) {
      residual[static_cast<size_t>(i)] =
          y[static_cast<size_t>(i)] - Sigmoid(f[static_cast<size_t>(i)]);
    }
    DecisionTree::Options topt;
    topt.max_depth = options_.max_depth;
    topt.min_samples_leaf = options_.min_samples_leaf;
    topt.seed = rng.NextU32();
    DecisionTree tree(topt);
    tree.Fit(x, residual, all_rows);
    for (int i = 0; i < n; ++i) {
      f[static_cast<size_t>(i)] +=
          options_.learning_rate * tree.Predict(x[static_cast<size_t>(i)]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedTrees::PredictProba(const std::vector<double>& x) const {
  double f = f0_;
  for (const auto& tree : trees_) f += options_.learning_rate * tree.Predict(x);
  return Sigmoid(f);
}

// ---------------------------------------------------------------------------
// LogisticRegression / LinearSvm
// ---------------------------------------------------------------------------

void LogisticRegression::Fit(const FeatureMatrix& x,
                             const std::vector<int>& y) {
  SUDO_CHECK(x.size() == y.size() && !x.empty());
  FitStandardizer(x, &mean_, &scale_);
  const size_t d = x[0].size();
  w_.assign(d, 0.0);
  b_ = 0.0;
  Rng rng(options_.seed);
  std::vector<int> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = options_.lr / (1.0 + 0.05 * epoch);
    for (int i : order) {
      const auto xi = Standardize(x[static_cast<size_t>(i)], mean_, scale_);
      double z = b_;
      for (size_t j = 0; j < d; ++j) z += w_[j] * xi[j];
      const double g = Sigmoid(z) - y[static_cast<size_t>(i)];
      for (size_t j = 0; j < d; ++j) {
        w_[j] -= lr * (g * xi[j] + options_.l2 * w_[j]);
      }
      b_ -= lr * g;
    }
  }
}

double LogisticRegression::PredictProba(const std::vector<double>& x) const {
  const auto xi = Standardize(x, mean_, scale_);
  double z = b_;
  for (size_t j = 0; j < xi.size(); ++j) z += w_[j] * xi[j];
  return Sigmoid(z);
}

void LinearSvm::Fit(const FeatureMatrix& x, const std::vector<int>& y) {
  SUDO_CHECK(x.size() == y.size() && !x.empty());
  FitStandardizer(x, &mean_, &scale_);
  const size_t d = x[0].size();
  w_.assign(d, 0.0);
  b_ = 0.0;
  Rng rng(options_.seed);
  std::vector<int> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const double lr = options_.lr / (1.0 + 0.05 * epoch);
    for (int i : order) {
      const auto xi = Standardize(x[static_cast<size_t>(i)], mean_, scale_);
      const double t = y[static_cast<size_t>(i)] == 1 ? 1.0 : -1.0;
      double z = b_;
      for (size_t j = 0; j < d; ++j) z += w_[j] * xi[j];
      if (t * z < 1.0) {
        for (size_t j = 0; j < d; ++j) {
          w_[j] -= lr * (-t * xi[j] + options_.l2 * w_[j]);
        }
        b_ += lr * t;
      } else {
        for (size_t j = 0; j < d; ++j) w_[j] -= lr * options_.l2 * w_[j];
      }
    }
  }
}

double LinearSvm::PredictProba(const std::vector<double>& x) const {
  const auto xi = Standardize(x, mean_, scale_);
  double z = b_;
  for (size_t j = 0; j < xi.size(); ++j) z += w_[j] * xi[j];
  return Sigmoid(2.0 * z);  // Platt-style squashing of the margin
}

}  // namespace sudowoodo::baselines
