// Auto-FuzzyJoin-style unsupervised entity matching (Li et al., SIGMOD
// 2021), the second unsupervised baseline of Table VI.
//
// Auto-FuzzyJoin auto-programs a fuzzy-join by (1) treating one table as a
// reference table with no/few duplicates, (2) joining every left record to
// its nearest reference record under a similarity function, and (3)
// auto-selecting the similarity threshold without labels by exploiting the
// reference-table assumption: at most one true match per left record, so
// estimated precision at threshold t can be bounded by how often a left
// record has multiple reference records above t. This reimplementation
// uses TF-IDF cosine as the join similarity and picks the threshold that
// maximizes estimated-precision-constrained recall.

#ifndef SUDOWOODO_BASELINES_FUZZYJOIN_H_
#define SUDOWOODO_BASELINES_FUZZYJOIN_H_

#include "data/em_dataset.h"
#include "pipeline/metrics.h"

namespace sudowoodo::baselines {

/// Options for AutoFuzzyJoin.
struct FuzzyJoinOptions {
  /// Minimum estimated precision the threshold selector must maintain.
  double target_precision = 0.9;
  /// Candidate thresholds scanned between 0 and 1.
  int threshold_steps = 40;
  /// Worker threads for candidate scoring (the all-pairs TF-IDF cosine
  /// pass): each B record's best/second-best scan is independent and
  /// lands in its own output slot, so results are bit-identical to
  /// serial for any value (the common/parallel.h contract). 1 = serial.
  int num_threads = 1;
};

/// Runs the fuzzy-join matcher on a dataset and evaluates test-split F1.
pipeline::PRF1 RunAutoFuzzyJoinOnEm(const data::EmDataset& ds,
                                    const FuzzyJoinOptions& options = {});

}  // namespace sudowoodo::baselines

#endif  // SUDOWOODO_BASELINES_FUZZYJOIN_H_
