#include "baselines/zeroer.h"

#include <algorithm>
#include <cmath>

#include "pipeline/em_pipeline.h"
#include "sparse/similarity.h"
#include "sparse/tfidf.h"

namespace sudowoodo::baselines {

namespace {
constexpr double kMinVar = 1e-4;

double LogGaussianDiag(const std::vector<double>& x,
                       const std::vector<double>& mean,
                       const std::vector<double>& var) {
  double lp = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    const double d = x[j] - mean[j];
    lp += -0.5 * (std::log(2.0 * M_PI * var[j]) + d * d / var[j]);
  }
  return lp;
}
}  // namespace

void ZeroEr::Fit(const FeatureMatrix& features) {
  SUDO_CHECK(!features.empty());
  const size_t n = features.size(), d = features[0].size();

  // Initialize by ranking on the feature sum: top prior_match fraction
  // seeds the match component.
  std::vector<std::pair<double, size_t>> ranked(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (double v : features[i]) s += v;
    ranked[i] = {s, i};
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  std::vector<double> resp(n, 0.0);
  const size_t n_match = std::max<size_t>(
      2, static_cast<size_t>(options_.prior_match * static_cast<double>(n)));
  for (size_t i = 0; i < n_match && i < n; ++i) resp[ranked[i].second] = 1.0;

  for (int iter = 0; iter <= options_.em_iters; ++iter) {
    // M-step.
    double wsum = 0.0;
    for (double r : resp) wsum += r;
    wsum = std::clamp(wsum, 1.0, static_cast<double>(n) - 1.0);
    weight_[1] = wsum / static_cast<double>(n);
    weight_[0] = 1.0 - weight_[1];
    for (int c = 0; c < 2; ++c) {
      mean_[c].assign(d, 0.0);
      var_[c].assign(d, 0.0);
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        mean_[1][j] += resp[i] * features[i][j];
        mean_[0][j] += (1.0 - resp[i]) * features[i][j];
      }
    }
    for (size_t j = 0; j < d; ++j) {
      mean_[1][j] /= wsum;
      mean_[0][j] /= (static_cast<double>(n) - wsum);
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        const double d1 = features[i][j] - mean_[1][j];
        const double d0 = features[i][j] - mean_[0][j];
        var_[1][j] += resp[i] * d1 * d1;
        var_[0][j] += (1.0 - resp[i]) * d0 * d0;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      var_[1][j] = std::max(kMinVar, var_[1][j] / wsum);
      var_[0][j] =
          std::max(kMinVar, var_[0][j] / (static_cast<double>(n) - wsum));
    }
    if (iter == options_.em_iters) break;
    // E-step.
    for (size_t i = 0; i < n; ++i) {
      const double l1 =
          std::log(weight_[1]) + LogGaussianDiag(features[i], mean_[1], var_[1]);
      const double l0 =
          std::log(weight_[0]) + LogGaussianDiag(features[i], mean_[0], var_[0]);
      const double m = std::max(l0, l1);
      const double p1 = std::exp(l1 - m);
      const double p0 = std::exp(l0 - m);
      resp[i] = p1 / (p0 + p1);
    }
  }
  // Identify the match component as the one with the larger mean feature
  // sum (similarity features are all increasing in match likelihood).
  double s1 = 0.0, s0 = 0.0;
  for (size_t j = 0; j < d; ++j) {
    s1 += mean_[1][j];
    s0 += mean_[0][j];
  }
  match_component_ = s1 >= s0 ? 1 : 0;
}

double ZeroEr::PredictProba(const std::vector<double>& x) const {
  const double l1 =
      std::log(weight_[1]) + LogGaussianDiag(x, mean_[1], var_[1]);
  const double l0 =
      std::log(weight_[0]) + LogGaussianDiag(x, mean_[0], var_[0]);
  const double m = std::max(l0, l1);
  const double p1 = std::exp(l1 - m);
  const double p0 = std::exp(l0 - m);
  const double post1 = p1 / (p0 + p1);
  return match_component_ == 1 ? post1 : 1.0 - post1;
}

std::vector<int> ZeroEr::PredictBatch(const FeatureMatrix& x) const {
  std::vector<int> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(PredictProba(row) >= 0.5 ? 1 : 0);
  return out;
}

FeatureMatrix EmPairFeatures(const data::EmDataset& ds,
                             const std::vector<data::LabeledPair>& pairs) {
  // TF-IDF fitted over both tables' serializations.
  std::vector<std::vector<std::string>> tokens_a, tokens_b;
  for (int i = 0; i < ds.table_a.num_rows(); ++i) {
    tokens_a.push_back(pipeline::EmPipeline::SerializeRow(ds.table_a, i));
  }
  for (int i = 0; i < ds.table_b.num_rows(); ++i) {
    tokens_b.push_back(pipeline::EmPipeline::SerializeRow(ds.table_b, i));
  }
  sparse::TfIdfFeaturizer tfidf;
  {
    std::vector<std::vector<std::string>> corpus = tokens_a;
    corpus.insert(corpus.end(), tokens_b.begin(), tokens_b.end());
    tfidf.Fit(corpus);
  }
  std::vector<sparse::SparseVector> vec_a, vec_b;
  for (const auto& t : tokens_a) vec_a.push_back(tfidf.Transform(t));
  for (const auto& t : tokens_b) vec_b.push_back(tfidf.Transform(t));

  FeatureMatrix out;
  out.reserve(pairs.size());
  for (const auto& p : pairs) {
    std::vector<double> f = sparse::PairFeatures(
        tokens_a[static_cast<size_t>(p.a_idx)],
        tokens_b[static_cast<size_t>(p.b_idx)]);
    f.push_back(sparse::SparseDot(vec_a[static_cast<size_t>(p.a_idx)],
                                  vec_b[static_cast<size_t>(p.b_idx)]));
    out.push_back(std::move(f));
  }
  return out;
}

pipeline::PRF1 RunZeroErOnEm(const data::EmDataset& ds,
                             const ZeroErOptions& options) {
  // Fit on all pairs (unsupervised); evaluate on the test split.
  std::vector<data::LabeledPair> all = ds.train;
  all.insert(all.end(), ds.valid.begin(), ds.valid.end());
  all.insert(all.end(), ds.test.begin(), ds.test.end());
  FeatureMatrix features = EmPairFeatures(ds, all);
  ZeroErOptions opts = options;
  opts.prior_match = std::max(0.02, ds.PositiveRatio());
  ZeroEr model(opts);
  model.Fit(features);

  FeatureMatrix test_features = EmPairFeatures(ds, ds.test);
  std::vector<int> preds = model.PredictBatch(test_features);
  std::vector<int> labels;
  labels.reserve(ds.test.size());
  for (const auto& p : ds.test) labels.push_back(p.label);
  return pipeline::ComputePRF1(preds, labels);
}

}  // namespace sudowoodo::baselines
