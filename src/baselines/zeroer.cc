#include "baselines/zeroer.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "pipeline/em_pipeline.h"
#include "sparse/similarity.h"
#include "sparse/tfidf.h"

namespace sudowoodo::baselines {

namespace {
constexpr double kMinVar = 1e-4;

double LogGaussianDiag(const std::vector<double>& x,
                       const std::vector<double>& mean,
                       const std::vector<double>& var) {
  double lp = 0.0;
  for (size_t j = 0; j < x.size(); ++j) {
    const double d = x[j] - mean[j];
    lp += -0.5 * (std::log(2.0 * M_PI * var[j]) + d * d / var[j]);
  }
  return lp;
}
}  // namespace

void ZeroEr::Fit(const FeatureMatrix& features) {
  SUDO_CHECK(!features.empty());
  const size_t n = features.size(), d = features[0].size();

  // Initialize by ranking on the feature sum: top prior_match fraction
  // seeds the match component.
  std::vector<std::pair<double, size_t>> ranked(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (double v : features[i]) s += v;
    ranked[i] = {s, i};
  }
  std::sort(ranked.begin(), ranked.end(), std::greater<>());
  std::vector<double> resp(n, 0.0);
  const size_t n_match = std::max<size_t>(
      2, static_cast<size_t>(options_.prior_match * static_cast<double>(n)));
  for (size_t i = 0; i < n_match && i < n; ++i) resp[ranked[i].second] = 1.0;

  for (int iter = 0; iter <= options_.em_iters; ++iter) {
    // M-step.
    double wsum = 0.0;
    for (double r : resp) wsum += r;
    wsum = std::clamp(wsum, 1.0, static_cast<double>(n) - 1.0);
    weight_[1] = wsum / static_cast<double>(n);
    weight_[0] = 1.0 - weight_[1];
    for (int c = 0; c < 2; ++c) {
      mean_[c].assign(d, 0.0);
      var_[c].assign(d, 0.0);
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        mean_[1][j] += resp[i] * features[i][j];
        mean_[0][j] += (1.0 - resp[i]) * features[i][j];
      }
    }
    for (size_t j = 0; j < d; ++j) {
      mean_[1][j] /= wsum;
      mean_[0][j] /= (static_cast<double>(n) - wsum);
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < d; ++j) {
        const double d1 = features[i][j] - mean_[1][j];
        const double d0 = features[i][j] - mean_[0][j];
        var_[1][j] += resp[i] * d1 * d1;
        var_[0][j] += (1.0 - resp[i]) * d0 * d0;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      var_[1][j] = std::max(kMinVar, var_[1][j] / wsum);
      var_[0][j] =
          std::max(kMinVar, var_[0][j] / (static_cast<double>(n) - wsum));
    }
    if (iter == options_.em_iters) break;
    // E-step: each posterior depends only on the (now frozen) M-step
    // parameters and its own row, so rows shard freely; resp[i] is a
    // pre-sized disjoint slot, keeping the result bit-identical to
    // serial. The M-step reductions above stay serial: a parallel sum
    // would reassociate doubles and drift across thread counts.
    ParallelForEach(static_cast<int64_t>(n), options_.num_threads,
                    [&](int64_t i) {
                      const double l1 = std::log(weight_[1]) +
                                        LogGaussianDiag(features[static_cast<size_t>(i)],
                                                        mean_[1], var_[1]);
                      const double l0 = std::log(weight_[0]) +
                                        LogGaussianDiag(features[static_cast<size_t>(i)],
                                                        mean_[0], var_[0]);
                      const double m = std::max(l0, l1);
                      const double p1 = std::exp(l1 - m);
                      const double p0 = std::exp(l0 - m);
                      resp[static_cast<size_t>(i)] = p1 / (p0 + p1);
                    });
  }
  // Identify the match component as the one with the larger mean feature
  // sum (similarity features are all increasing in match likelihood).
  double s1 = 0.0, s0 = 0.0;
  for (size_t j = 0; j < d; ++j) {
    s1 += mean_[1][j];
    s0 += mean_[0][j];
  }
  match_component_ = s1 >= s0 ? 1 : 0;
}

double ZeroEr::PredictProba(const std::vector<double>& x) const {
  const double l1 =
      std::log(weight_[1]) + LogGaussianDiag(x, mean_[1], var_[1]);
  const double l0 =
      std::log(weight_[0]) + LogGaussianDiag(x, mean_[0], var_[0]);
  const double m = std::max(l0, l1);
  const double p1 = std::exp(l1 - m);
  const double p0 = std::exp(l0 - m);
  const double post1 = p1 / (p0 + p1);
  return match_component_ == 1 ? post1 : 1.0 - post1;
}

std::vector<int> ZeroEr::PredictBatch(const FeatureMatrix& x) const {
  std::vector<int> out(x.size(), 0);
  ParallelForEach(static_cast<int64_t>(x.size()), options_.num_threads,
                  [&](int64_t i) {
                    out[static_cast<size_t>(i)] =
                        PredictProba(x[static_cast<size_t>(i)]) >= 0.5 ? 1 : 0;
                  });
  return out;
}

FeatureMatrix EmPairFeatures(const data::EmDataset& ds,
                             const std::vector<data::LabeledPair>& pairs,
                             int num_threads) {
  // TF-IDF fitted over both tables' serializations. Each parallel loop
  // below writes pre-sized disjoint slots, so any thread count produces
  // the same matrix bit-for-bit. TfIdfFeaturizer::Fit stays serial (its
  // document-frequency counts are a cross-row reduction).
  const size_t na = static_cast<size_t>(ds.table_a.num_rows());
  const size_t nb = static_cast<size_t>(ds.table_b.num_rows());
  std::vector<std::vector<std::string>> tokens_a(na), tokens_b(nb);
  ParallelForEach(static_cast<int64_t>(na), num_threads, [&](int64_t i) {
    tokens_a[static_cast<size_t>(i)] =
        pipeline::EmPipeline::SerializeRow(ds.table_a, static_cast<int>(i));
  });
  ParallelForEach(static_cast<int64_t>(nb), num_threads, [&](int64_t i) {
    tokens_b[static_cast<size_t>(i)] =
        pipeline::EmPipeline::SerializeRow(ds.table_b, static_cast<int>(i));
  });
  sparse::TfIdfFeaturizer tfidf;
  {
    std::vector<std::vector<std::string>> corpus = tokens_a;
    corpus.insert(corpus.end(), tokens_b.begin(), tokens_b.end());
    tfidf.Fit(corpus);
  }
  std::vector<sparse::SparseVector> vec_a(na), vec_b(nb);
  ParallelForEach(static_cast<int64_t>(na), num_threads, [&](int64_t i) {
    vec_a[static_cast<size_t>(i)] = tfidf.Transform(tokens_a[static_cast<size_t>(i)]);
  });
  ParallelForEach(static_cast<int64_t>(nb), num_threads, [&](int64_t i) {
    vec_b[static_cast<size_t>(i)] = tfidf.Transform(tokens_b[static_cast<size_t>(i)]);
  });

  FeatureMatrix out(pairs.size());
  ParallelForEach(static_cast<int64_t>(pairs.size()), num_threads,
                  [&](int64_t idx) {
                    const data::LabeledPair& p = pairs[static_cast<size_t>(idx)];
                    std::vector<double> f = sparse::PairFeatures(
                        tokens_a[static_cast<size_t>(p.a_idx)],
                        tokens_b[static_cast<size_t>(p.b_idx)]);
                    f.push_back(
                        sparse::SparseDot(vec_a[static_cast<size_t>(p.a_idx)],
                                          vec_b[static_cast<size_t>(p.b_idx)]));
                    out[static_cast<size_t>(idx)] = std::move(f);
                  });
  return out;
}

pipeline::PRF1 RunZeroErOnEm(const data::EmDataset& ds,
                             const ZeroErOptions& options) {
  // Fit on all pairs (unsupervised); evaluate on the test split.
  std::vector<data::LabeledPair> all = ds.train;
  all.insert(all.end(), ds.valid.begin(), ds.valid.end());
  all.insert(all.end(), ds.test.begin(), ds.test.end());
  FeatureMatrix features = EmPairFeatures(ds, all, options.num_threads);
  ZeroErOptions opts = options;
  opts.prior_match = std::max(0.02, ds.PositiveRatio());
  ZeroEr model(opts);
  model.Fit(features);

  FeatureMatrix test_features = EmPairFeatures(ds, ds.test, options.num_threads);
  std::vector<int> preds = model.PredictBatch(test_features);
  std::vector<int> labels;
  labels.reserve(ds.test.size());
  for (const auto& p : ds.test) labels.push_back(p.label);
  return pipeline::ComputePRF1(preds, labels);
}

}  // namespace sudowoodo::baselines
