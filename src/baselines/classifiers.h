// From-scratch classical classifiers over dense feature vectors:
// decision tree (CART), random forest, gradient-boosted trees, logistic
// regression, and a linear SVM. These power the Sherlock/Sato baseline
// variants of Table XII (LR / SVM / GBT / RF) and the Baran-style error
// corrector's ensemble scorer.

#ifndef SUDOWOODO_BASELINES_CLASSIFIERS_H_
#define SUDOWOODO_BASELINES_CLASSIFIERS_H_

#include <memory>
#include <vector>

#include "common/rng.h"

namespace sudowoodo::baselines {

/// Dense feature matrix: one row per example.
using FeatureMatrix = std::vector<std::vector<double>>;

/// Common interface: fit on {features, 0/1 labels}, predict P(positive).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;
  virtual void Fit(const FeatureMatrix& x, const std::vector<int>& y) = 0;
  virtual double PredictProba(const std::vector<double>& x) const = 0;

  int Predict(const std::vector<double>& x) const {
    return PredictProba(x) >= 0.5 ? 1 : 0;
  }
  std::vector<int> PredictBatch(const FeatureMatrix& x) const;
  std::vector<double> PredictProbaBatch(const FeatureMatrix& x) const;
};

/// CART regression tree (variance-reduction splits). Used directly for
/// probability estimation (leaf mean of 0/1 targets) and for boosting
/// (leaf mean of residuals).
class DecisionTree {
 public:
  struct Options {
    int max_depth = 6;
    int min_samples_leaf = 2;
    /// Features sampled per split; <= 0 means all.
    int features_per_split = -1;
    uint64_t seed = 3;
  };

  explicit DecisionTree(const Options& options) : options_(options) {}

  /// Fits on a subset of rows (`rows`) against real-valued targets.
  void Fit(const FeatureMatrix& x, const std::vector<double>& y,
           const std::vector<int>& rows);

  double Predict(const std::vector<double>& x) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }

 private:
  struct Node {
    int feature = -1;       // -1 = leaf
    double threshold = 0.0;
    int left = -1, right = -1;
    double value = 0.0;     // leaf prediction
  };
  int Build(const FeatureMatrix& x, const std::vector<double>& y,
            std::vector<int>* rows, int begin, int end, int depth, Rng* rng);

  Options options_;
  std::vector<Node> nodes_;
};

/// Random forest of probability trees (bootstrap + feature subsampling).
class RandomForest : public BinaryClassifier {
 public:
  struct Options {
    int n_trees = 30;
    int max_depth = 8;
    int min_samples_leaf = 2;
    uint64_t seed = 5;
  };

  RandomForest() : RandomForest(Options()) {}
  explicit RandomForest(const Options& options) : options_(options) {}
  void Fit(const FeatureMatrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  Options options_;
  std::vector<DecisionTree> trees_;
};

/// Gradient-boosted trees with logistic loss.
class GradientBoostedTrees : public BinaryClassifier {
 public:
  struct Options {
    int n_trees = 40;
    int max_depth = 3;
    double learning_rate = 0.2;
    int min_samples_leaf = 4;
    uint64_t seed = 7;
  };

  GradientBoostedTrees() : GradientBoostedTrees(Options()) {}
  explicit GradientBoostedTrees(const Options& options) : options_(options) {}
  void Fit(const FeatureMatrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  Options options_;
  double f0_ = 0.0;  // prior log-odds
  std::vector<DecisionTree> trees_;
};

/// Logistic regression trained with mini-batch SGD + L2.
class LogisticRegression : public BinaryClassifier {
 public:
  struct Options {
    int epochs = 60;
    double lr = 0.1;
    double l2 = 1e-4;
    uint64_t seed = 11;
  };

  LogisticRegression() : LogisticRegression(Options()) {}
  explicit LogisticRegression(const Options& options) : options_(options) {}
  void Fit(const FeatureMatrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  Options options_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_, scale_;  // feature standardization
};

/// Linear SVM (hinge loss, SGD); probabilities via a sigmoid on the margin.
class LinearSvm : public BinaryClassifier {
 public:
  struct Options {
    int epochs = 60;
    double lr = 0.05;
    double l2 = 1e-4;
    uint64_t seed = 13;
  };

  LinearSvm() : LinearSvm(Options()) {}
  explicit LinearSvm(const Options& options) : options_(options) {}
  void Fit(const FeatureMatrix& x, const std::vector<int>& y) override;
  double PredictProba(const std::vector<double>& x) const override;

 private:
  Options options_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> mean_, scale_;
};

}  // namespace sudowoodo::baselines

#endif  // SUDOWOODO_BASELINES_CLASSIFIERS_H_
