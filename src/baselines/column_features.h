// Sherlock- and Sato-style column featurization (Hulsebos et al., KDD 2019;
// Zhang et al., VLDB 2020): the baseline feature extractors of the column
// matching experiments (Tables X, XII; Fig. 12).
//
// Sherlock represents a column by hand-crafted statistics (character
// distributions, value-shape statistics, word-level aggregates); Sato adds
// table-context "topic" features on top of Sherlock's. We reproduce both
// shapes: SherlockFeatures = statistics + hashed bag-of-words embedding;
// SatoFeatures = SherlockFeatures + hashed character-n-gram topic vector
// (the LDA-context analogue). Pair features for the matching classifiers
// follow the paper's appendix: concat(v_c, v_c', |v_c - v_c'|).

#ifndef SUDOWOODO_BASELINES_COLUMN_FEATURES_H_
#define SUDOWOODO_BASELINES_COLUMN_FEATURES_H_

#include <string>
#include <vector>

#include "data/column_corpus.h"

namespace sudowoodo::baselines {

/// Sherlock-style dense features for one column.
std::vector<double> SherlockFeatures(const data::Column& column);

/// Sato-style features: Sherlock + topic context vector.
std::vector<double> SatoFeatures(const data::Column& column);

/// Pair features for a candidate column pair given per-column vectors:
/// concat(v1, v2, |v1 - v2|)  (Appendix C).
std::vector<double> ColumnPairFeatures(const std::vector<double>& v1,
                                       const std::vector<double>& v2);

/// Cosine similarity of two feature vectors (the SIM baseline).
double FeatureCosine(const std::vector<double>& v1,
                     const std::vector<double>& v2);

}  // namespace sudowoodo::baselines

#endif  // SUDOWOODO_BASELINES_COLUMN_FEATURES_H_
