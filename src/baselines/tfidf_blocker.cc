#include "baselines/tfidf_blocker.h"

#include <algorithm>
#include <set>

#include "common/parallel.h"
#include "sparse/tfidf.h"

namespace sudowoodo::baselines {

std::vector<pipeline::BlockingPoint> TfidfBlockingSweep(
    const data::EmDataset& ds, int k_max, int num_threads) {
  std::vector<std::vector<std::string>> tokens_a, tokens_b;
  for (int i = 0; i < ds.table_a.num_rows(); ++i) {
    tokens_a.push_back(pipeline::EmPipeline::SerializeRow(ds.table_a, i));
  }
  for (int i = 0; i < ds.table_b.num_rows(); ++i) {
    tokens_b.push_back(pipeline::EmPipeline::SerializeRow(ds.table_b, i));
  }
  sparse::TfIdfFeaturizer tfidf;
  {
    auto corpus = tokens_a;
    corpus.insert(corpus.end(), tokens_b.begin(), tokens_b.end());
    tfidf.Fit(corpus);
  }
  std::vector<sparse::SparseVector> vec_a =
      tfidf.TransformBatch(tokens_a, num_threads);
  std::vector<sparse::SparseVector> vec_b =
      tfidf.TransformBatch(tokens_b, num_threads);

  // Top-k_max B neighbours for every A record; each A row owns its output
  // slot so the parallel scoring merges bit-identically.
  const int na = ds.table_a.num_rows(), nb = ds.table_b.num_rows();
  std::vector<std::vector<std::pair<float, int>>> topk(
      static_cast<size_t>(na));
  ParallelFor(na, num_threads, [&](int64_t begin, int64_t end, int /*shard*/) {
    for (int64_t a = begin; a < end; ++a) {
      auto& heap = topk[static_cast<size_t>(a)];
      for (int b = 0; b < nb; ++b) {
        const float s = sparse::SparseDot(vec_a[static_cast<size_t>(a)],
                                          vec_b[static_cast<size_t>(b)]);
        heap.emplace_back(s, b);
      }
      std::partial_sort(
          heap.begin(),
          heap.begin() +
              std::min<size_t>(heap.size(), static_cast<size_t>(k_max)),
          heap.end(), std::greater<>());
      heap.resize(std::min<size_t>(heap.size(), static_cast<size_t>(k_max)));
    }
  });

  std::set<std::pair<int, int>> gold(ds.gold_matches.begin(),
                                     ds.gold_matches.end());
  const double denom = static_cast<double>(na) * static_cast<double>(nb);
  std::vector<pipeline::BlockingPoint> points;
  for (int k = 1; k <= k_max; ++k) {
    int64_t n_cand = 0, hit = 0;
    for (int a = 0; a < na; ++a) {
      const auto& heap = topk[static_cast<size_t>(a)];
      const int kk = std::min<int>(k, static_cast<int>(heap.size()));
      for (int j = 0; j < kk; ++j) {
        ++n_cand;
        if (gold.count({a, heap[static_cast<size_t>(j)].second})) ++hit;
      }
    }
    pipeline::BlockingPoint pt;
    pt.k = k;
    pt.n_candidates = static_cast<int>(n_cand);
    pt.recall = gold.empty() ? 1.0
                             : static_cast<double>(hit) /
                                   static_cast<double>(gold.size());
    pt.cssr = denom > 0 ? static_cast<double>(n_cand) / denom : 0.0;
    points.push_back(pt);
  }
  return points;
}

}  // namespace sudowoodo::baselines
