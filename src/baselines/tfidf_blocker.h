// Self-supervised lexical blocker: the DL-Block comparison point for the
// blocking experiments (Table VII / Fig. 7).
//
// DL-Block (Thirumuruganathan et al., VLDB 2021) explores deep-learning
// blocking designs including self-supervised ones; its published numbers
// come from its own testbed and cannot be run here, so the benches compare
// against this strong classical stand-in: TF-IDF kNN blocking over the
// same serialized records (the best non-contrastive design available to
// our substrate), and additionally quote DL-Block's paper numbers.

#ifndef SUDOWOODO_BASELINES_TFIDF_BLOCKER_H_
#define SUDOWOODO_BASELINES_TFIDF_BLOCKER_H_

#include <vector>

#include "data/em_dataset.h"
#include "pipeline/em_pipeline.h"

namespace sudowoodo::baselines {

/// Recall/CSSR points for TF-IDF cosine kNN blocking, k = 1..k_max
/// (the same sweep EmPipeline::BlockingSweep performs for Sudowoodo).
/// Scoring is sharded over the A records when num_threads > 1; the
/// candidate sets are bit-identical to the serial path.
std::vector<pipeline::BlockingPoint> TfidfBlockingSweep(
    const data::EmDataset& ds, int k_max, int num_threads = 1);

}  // namespace sudowoodo::baselines

#endif  // SUDOWOODO_BASELINES_TFIDF_BLOCKER_H_
