#include "data/profiling.h"

#include <cmath>

namespace sudowoodo::data {

ColumnProfiles::ColumnProfiles(const Table& table)
    : n_rows_(table.num_rows()),
      freq_(static_cast<size_t>(table.num_attrs())) {
  for (int c = 0; c < table.num_attrs(); ++c) {
    for (int r = 0; r < table.num_rows(); ++r) {
      ++freq_[static_cast<size_t>(c)][table.Cell(r, c)];
    }
  }
}

double ColumnProfiles::Frequency(int col, const std::string& value) const {
  const auto& f = freq_[static_cast<size_t>(col)];
  auto it = f.find(value);
  if (it == f.end() || n_rows_ == 0) return 0.0;
  return static_cast<double>(it->second) / n_rows_;
}

std::string ColumnProfiles::FrequencyBucket(int col,
                                            const std::string& value) const {
  const auto& f = freq_[static_cast<size_t>(col)];
  auto it = f.find(value);
  const int count = it == f.end() ? 0 : it->second;
  if (count <= 1) return "rare";
  if (count <= 3) return "low";
  if (count <= 8) return "mid";
  return "high";
}

VicinityModel::VicinityModel(const Table& table)
    : n_cols_(table.num_attrs()),
      majority_(static_cast<size_t>(n_cols_) * n_cols_) {
  // Vote counting, then collapse to majorities.
  std::vector<std::unordered_map<std::string,
                                 std::unordered_map<std::string, int>>>
      votes(static_cast<size_t>(n_cols_) * n_cols_);
  for (int r = 0; r < table.num_rows(); ++r) {
    for (int c2 = 0; c2 < n_cols_; ++c2) {
      for (int c = 0; c < n_cols_; ++c) {
        if (c == c2) continue;
        votes[static_cast<size_t>(c2) * n_cols_ + c][table.Cell(r, c2)]
             [table.Cell(r, c)]++;
      }
    }
  }
  for (size_t slot = 0; slot < votes.size(); ++slot) {
    for (const auto& [context_value, value_votes] : votes[slot]) {
      const std::string* best = nullptr;
      int best_n = 0, total = 0;
      for (const auto& [v, n] : value_votes) {
        total += n;
        if (n > best_n) {
          best_n = n;
          best = &v;
        }
      }
      Majority m;
      if (best != nullptr) {
        m.value = *best;
        // Dependable: a strict majority over at least 3 observations.
        m.dependable = best_n * 2 > total && total >= 3;
      }
      majority_[slot].emplace(context_value, std::move(m));
    }
  }
}

const VicinityModel::Majority* VicinityModel::Lookup(
    int c2, int c, const std::string& context_value) const {
  const auto& m = majority_[static_cast<size_t>(c2) * n_cols_ + c];
  auto it = m.find(context_value);
  return it == m.end() ? nullptr : &it->second;
}

double VicinityModel::Agreement(const Table& table, int row, int col,
                                const std::string& cand) const {
  int contexts = 0, agree = 0;
  for (int c2 = 0; c2 < n_cols_; ++c2) {
    if (c2 == col) continue;
    const Majority* m = Lookup(c2, col, table.Cell(row, c2));
    if (m == nullptr || !m->dependable) continue;
    ++contexts;
    if (m->value == cand) ++agree;
  }
  return contexts > 0 ? static_cast<double>(agree) / contexts : 0.0;
}

std::string VicinityModel::ImpliedValue(const Table& table, int row,
                                        int col) const {
  std::unordered_map<std::string, int> votes;
  for (int c2 = 0; c2 < n_cols_; ++c2) {
    if (c2 == col) continue;
    const Majority* m = Lookup(c2, col, table.Cell(row, c2));
    if (m == nullptr || !m->dependable) continue;
    ++votes[m->value];
  }
  const std::string* best = nullptr;
  int best_n = 0;
  for (const auto& [v, n] : votes) {
    if (n > best_n) {
      best_n = n;
      best = &v;
    }
  }
  return best == nullptr ? "" : *best;
}

int CharBigramModel::Bucket(char c) {
  if (c >= 'a' && c <= 'z') return c - 'a';          // 0..25
  if (c >= 'A' && c <= 'Z') return c - 'A';          // fold case
  if (c >= '0' && c <= '9') return 26 + (c - '0');   // 26..35
  if (c == ' ') return 36;
  if (c == '-') return 37;
  if (c == '.') return 38;
  return 39;  // everything else
}

CharBigramModel::CharBigramModel(const Table& table)
    : counts_(static_cast<size_t>(table.num_attrs()),
              std::vector<int>(kAlphabet * kAlphabet, 0)),
      row_totals_(static_cast<size_t>(table.num_attrs()),
                  std::vector<int>(kAlphabet, 0)) {
  for (int c = 0; c < table.num_attrs(); ++c) {
    for (int r = 0; r < table.num_rows(); ++r) {
      const std::string& v = table.Cell(r, c);
      for (size_t i = 0; i + 1 < v.size(); ++i) {
        const int a = Bucket(v[i]), b = Bucket(v[i + 1]);
        ++counts_[static_cast<size_t>(c)][a * kAlphabet + b];
        ++row_totals_[static_cast<size_t>(c)][static_cast<size_t>(a)];
      }
    }
  }
}

double CharBigramModel::Score(int col, const std::string& value) const {
  if (value.size() < 2) return value.empty() ? -4.0 : -1.0;
  const auto& counts = counts_[static_cast<size_t>(col)];
  const auto& totals = row_totals_[static_cast<size_t>(col)];
  double ll = 0.0;
  int n = 0;
  for (size_t i = 0; i + 1 < value.size(); ++i) {
    const int a = Bucket(value[i]), b = Bucket(value[i + 1]);
    const double p =
        (counts[static_cast<size_t>(a * kAlphabet + b)] + 1.0) /
        (totals[static_cast<size_t>(a)] + kAlphabet);
    ll += std::log(p);
    ++n;
  }
  return ll / n;
}

}  // namespace sudowoodo::data
