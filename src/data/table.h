// A minimal relational table model: attribute names + string cells. This is
// the common currency of all three task families (entity tables for EM,
// dirty spreadsheets for cleaning, columns for type discovery).

#ifndef SUDOWOODO_DATA_TABLE_H_
#define SUDOWOODO_DATA_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "text/serialize.h"

namespace sudowoodo::data {

/// A row of string cell values aligned with a Table's attribute list.
using Row = std::vector<std::string>;

/// A named table with a flat string schema.
struct Table {
  std::string name;
  std::vector<std::string> attrs;
  std::vector<Row> rows;

  int num_rows() const { return static_cast<int>(rows.size()); }
  int num_attrs() const { return static_cast<int>(attrs.size()); }

  const std::string& Cell(int row, int attr) const {
    SUDO_CHECK(row >= 0 && row < num_rows());
    SUDO_CHECK(attr >= 0 && attr < num_attrs());
    return rows[static_cast<size_t>(row)][static_cast<size_t>(attr)];
  }

  void SetCell(int row, int attr, std::string value) {
    SUDO_CHECK(row >= 0 && row < num_rows());
    SUDO_CHECK(attr >= 0 && attr < num_attrs());
    rows[static_cast<size_t>(row)][static_cast<size_t>(attr)] =
        std::move(value);
  }

  /// Index of the attribute or -1.
  int AttrIndex(const std::string& attr) const {
    for (int i = 0; i < num_attrs(); ++i) {
      if (attrs[static_cast<size_t>(i)] == attr) return i;
    }
    return -1;
  }

  /// Row as {attr, value} pairs for serialization.
  std::vector<text::AttrValue> RowAttrs(int row) const {
    std::vector<text::AttrValue> out;
    out.reserve(attrs.size());
    for (int a = 0; a < num_attrs(); ++a) {
      out.emplace_back(attrs[static_cast<size_t>(a)], Cell(row, a));
    }
    return out;
  }
};

}  // namespace sudowoodo::data

#endif  // SUDOWOODO_DATA_TABLE_H_
