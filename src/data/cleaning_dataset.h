// Synthetic data-cleaning benchmark generator (paper §V-A, §VI-C).
//
// Mirrors the four Baran/Raha benchmarks (Table III): a clean table is
// generated from a schema with functional dependencies, then an error
// channel injects the paper's error types at the paper's rates:
//   MV  - missing value        (cell blanked)
//   T   - typo                 (character-level edit)
//   FI  - formatting issue     (unit / case / format change)
//   VAD - violated attribute dependency (FD-inconsistent value)
//
// A Baran-style ensemble of correctors (value histogram, FD lookup,
// edit-distance typo fixer, format normalizers) generates candidate
// correction sets per cell with tunable coverage and size, reproducing the
// statistics of Table III / XIV.

#ifndef SUDOWOODO_DATA_CLEANING_DATASET_H_
#define SUDOWOODO_DATA_CLEANING_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/table.h"

namespace sudowoodo::data {

/// The paper's error taxonomy (Table III).
enum class ErrorType { kMissingValue, kTypo, kFormatIssue, kViolatedDep };

/// A single injected error.
struct ErrorCell {
  int row = 0;
  int col = 0;
  ErrorType type = ErrorType::kTypo;
};

/// One generated cleaning benchmark.
struct CleaningDataset {
  std::string name;
  Table dirty;
  Table clean;
  std::vector<ErrorCell> errors;
  /// candidates[row][col]: candidate corrections for that cell (possibly
  /// empty; clean cells also receive candidates, as in Baran).
  std::vector<std::vector<std::vector<std::string>>> candidates;

  bool IsError(int row, int col) const;
  /// Fraction of error cells whose ground-truth correction appears among
  /// its candidates (the "%coverage" of Tables III/XIV).
  double Coverage() const;
  /// Mean candidate-set size over cells with a non-empty set ("#cand").
  double AvgCandidates() const;
};

/// Generator parameters; see GetCleaningSpec for the four presets.
struct CleaningSpec {
  std::string name;
  int n_rows = 240;
  double error_rate = 0.08;
  std::vector<ErrorType> error_types;
  double coverage = 0.9;   // probability the truth enters the candidate set
  int cand_size = 15;      // approximate candidates per cell
  uint64_t seed = 21;
};

/// Preset matching one of {beers, hospital, rayyan, tax} (Table III,
/// rates and error-type mixes preserved; sizes scaled). Aborts on unknown.
CleaningSpec GetCleaningSpec(const std::string& name);

/// The four benchmark names in paper order.
const std::vector<std::string>& CleaningDatasetNames();

/// Generates a benchmark (deterministic given spec.seed).
CleaningDataset GenerateCleaning(const CleaningSpec& spec);

/// Applies one error-channel corruption to a value (exposed so the
/// cleaning pipeline can synthesize (corrupted, truth) training pairs from
/// cells known to be clean - the analogue of Baran's corrector updating).
std::string CorruptValue(const std::string& value, ErrorType type, Rng* rng);

}  // namespace sudowoodo::data

#endif  // SUDOWOODO_DATA_CLEANING_DATASET_H_
