#include "data/column_corpus.h"

#include <functional>

#include "common/string_util.h"
#include "data/word_pools.h"

namespace sudowoodo::data {

namespace {

std::string Pick(const std::vector<std::string>& pool, Rng* rng) {
  return pool[static_cast<size_t>(
      rng->UniformInt(static_cast<int>(pool.size())))];
}

/// One fine-grained subtype: generator of a single cell value.
struct Subtype {
  std::string coarse;  // coarse type name
  std::string fine;    // subtype name
  std::function<std::string(Rng*)> gen;
};

std::vector<Subtype> SubtypeCatalog() {
  std::vector<Subtype> cat;
  auto add = [&cat](std::string coarse, std::string fine,
                    std::function<std::string(Rng*)> gen) {
    cat.push_back({std::move(coarse), std::move(fine), std::move(gen)});
  };
  add("city", "us city", [](Rng* rng) { return Pick(WordPools::UsCities(), rng); });
  add("city", "central eu city",
      [](Rng* rng) { return Pick(WordPools::EuCities(), rng); });
  add("state", "us state abbrev",
      [](Rng* rng) { return Pick(WordPools::UsStates(), rng); });
  add("state", "us state full",
      [](Rng* rng) { return Pick(WordPools::UsStateNames(), rng); });
  add("country", "country",
      [](Rng* rng) { return Pick(WordPools::Countries(), rng); });
  add("language", "language",
      [](Rng* rng) { return Pick(WordPools::Languages(), rng); });
  add("name", "person name", [](Rng* rng) {
    return Pick(WordPools::LastNames(), rng) + ", " +
           Pick(WordPools::FirstNames(), rng);
  });
  add("name", "company name", [](Rng* rng) {
    return Pick(WordPools::RestaurantWords(), rng) + " " +
           Pick(WordPools::BreweryWords(), rng) + " " +
           Pick(WordPools::CompanySuffixes(), rng);
  });
  add("club", "sports club",
      [](Rng* rng) { return Pick(WordPools::SportsClubs(), rng); });
  add("year", "year",
      [](Rng* rng) { return StrFormat("%d", 1950 + rng->UniformInt(72)); });
  add("age", "age plain",
      [](Rng* rng) { return StrFormat("%d", 5 + rng->UniformInt(85)); });
  add("weight", "weight lbs", [](Rng* rng) {
    return StrFormat("%d lbs", 5 + rng->UniformInt(100));
  });
  add("weight", "weight kg",
      [](Rng* rng) { return StrFormat("%dkg", 20 + rng->UniformInt(80)); });
  add("gender", "gender letter",
      [](Rng* rng) { return rng->Bernoulli(0.5) ? "m" : "f"; });
  add("gender", "gender word",
      [](Rng* rng) { return rng->Bernoulli(0.5) ? "male" : "female"; });
  add("currency", "usd amount", [](Rng* rng) {
    return StrFormat("$%d.%02d", rng->UniformInt(900), rng->UniformInt(100));
  });
  add("result", "ball game result",
      [](Rng* rng) { return Pick(WordPools::BallGameResults(), rng); });
  add("result", "baseball in-game event",
      [](Rng* rng) { return Pick(WordPools::BaseballEvents(), rng); });
  add("genre", "music genre",
      [](Rng* rng) { return Pick(WordPools::Genres(), rng); });
  add("type", "cuisine",
      [](Rng* rng) { return Pick(WordPools::Cuisines(), rng); });
  add("type", "beer style",
      [](Rng* rng) { return Pick(WordPools::BeerStyles(), rng); });
  add("position", "position", [](Rng* rng) {
    static const std::vector<std::string> kPos = {
        "pitcher", "catcher", "shortstop", "goalkeeper",
        "forward", "defender", "midfielder", "center"};
    return Pick(kPos, rng);
  });
  add("description", "paper title", [](Rng* rng) {
    std::string t;
    for (int i = 0; i < 5; ++i) {
      if (i) t += " ";
      t += Pick(WordPools::TitleWords(), rng);
    }
    return t;
  });
  add("description", "product blurb", [](Rng* rng) {
    return Pick(WordPools::ProductAdjectives(), rng) + " " +
           Pick(WordPools::ProductAdjectives(), rng) + " " +
           Pick(WordPools::ProductCategories(), rng);
  });
  add("population", "population", [](Rng* rng) {
    return StrFormat("%d,%03d,%03d", 1 + rng->UniformInt(9),
                     rng->UniformInt(1000), rng->UniformInt(1000));
  });
  add("area", "area sq mi", [](Rng* rng) {
    return StrFormat("%d sq mi", 10 + rng->UniformInt(5000));
  });
  add("address", "street address", [](Rng* rng) {
    return StrFormat("%d %s %s", 100 + rng->UniformInt(900),
                     Pick(WordPools::LastNames(), rng).c_str(),
                     rng->Bernoulli(0.5) ? "st" : "ave");
  });
  add("phone", "phone", [](Rng* rng) { return MakePhoneNumber(rng); });
  add("company", "manufacturer",
      [](Rng* rng) { return Pick(WordPools::Brands(), rng); });
  add("album", "album title", [](Rng* rng) {
    return Pick(WordPools::SongWords(), rng) + " " +
           Pick(WordPools::SongWords(), rng);
  });
  add("artist", "artist", [](Rng* rng) {
    return Pick(WordPools::FirstNames(), rng) + " " +
           Pick(WordPools::LastNames(), rng);
  });
  add("plays", "play count",
      [](Rng* rng) { return StrFormat("%d", rng->UniformInt(100000)); });
  return cat;
}

}  // namespace

ColumnCorpus GenerateColumnCorpus(const ColumnCorpusSpec& spec) {
  Rng rng(spec.seed);
  ColumnCorpus corpus;
  std::vector<Subtype> catalog = SubtypeCatalog();

  // Build the type/subtype name tables.
  for (size_t s = 0; s < catalog.size(); ++s) {
    int type_id = -1;
    for (size_t t = 0; t < corpus.type_names.size(); ++t) {
      if (corpus.type_names[t] == catalog[s].coarse) {
        type_id = static_cast<int>(t);
        break;
      }
    }
    if (type_id < 0) {
      type_id = static_cast<int>(corpus.type_names.size());
      corpus.type_names.push_back(catalog[s].coarse);
    }
    corpus.subtype_names.push_back(catalog[s].fine);
    corpus.subtype_to_type.push_back(type_id);
  }

  corpus.columns.reserve(static_cast<size_t>(spec.n_columns));
  for (int i = 0; i < spec.n_columns; ++i) {
    const int sub = rng.UniformInt(static_cast<int>(catalog.size()));
    Column col;
    col.subtype_id = sub;
    col.type_id = corpus.subtype_to_type[static_cast<size_t>(sub)];
    const int n_values = rng.UniformRange(spec.min_values, spec.max_values);
    col.values.reserve(static_cast<size_t>(n_values));
    for (int v = 0; v < n_values; ++v) {
      col.values.push_back(catalog[static_cast<size_t>(sub)].gen(&rng));
    }
    corpus.columns.push_back(std::move(col));
  }
  return corpus;
}

}  // namespace sudowoodo::data
