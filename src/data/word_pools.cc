#include "data/word_pools.h"

#include <algorithm>

#include "common/status.h"
#include "common/string_util.h"

namespace sudowoodo::data {

namespace {
// NOLINTBEGIN: long literal pool tables.
const std::vector<std::string> kBrands = {
    "zenix",   "acmetech", "lumora",  "vextron", "quorra",  "nimbus",
    "orivo",   "pulsar",   "kestrel", "tavix",   "bryton",  "celvo",
    "dynapro", "ellipse",  "fornax",  "gravix",  "helion",  "ionica",
    "jolt",    "krypta",   "lyric",   "maxon",   "nova",    "octave",
    "prisma",  "quasar",   "rivet",   "solara",  "tundra",  "umbra",
    "vortex",  "wavecrest", "xenon",  "yonder",  "zephyr",  "alturas",
    "borealis", "cinder",  "drift",   "emberly"};

const std::vector<std::string> kProductCategories = {
    "camera",    "laptop",   "printer",  "speaker",  "headphones",
    "monitor",   "keyboard", "router",   "tablet",   "drive",
    "software",  "scanner",  "projector", "charger",  "mouse",
    "microphone", "webcam",  "adapter",  "console",  "television"};

const std::vector<std::string> kProductAdjectives = {
    "digital",  "wireless", "portable", "compact",  "professional",
    "premium",  "deluxe",   "ultra",    "advanced", "classic",
    "standard", "gaming",   "studio",   "travel",   "home",
    "office",   "outdoor",  "smart",    "slim",     "rugged"};

const std::vector<std::string> kTitleWords = {
    "database",     "learning",   "query",       "optimization", "neural",
    "graph",        "distributed", "stream",     "indexing",     "matching",
    "integration",  "cleaning",   "discovery",   "transaction",  "storage",
    "retrieval",    "clustering", "sampling",    "estimation",   "parallel",
    "adaptive",     "scalable",   "efficient",   "approximate",  "semantic",
    "relational",   "temporal",   "spatial",     "probabilistic", "incremental",
    "knowledge",    "entity",     "schema",      "workload",     "benchmark",
    "representation", "embedding", "contrastive", "supervised",  "annotation"};

const std::vector<std::string> kFirstNames = {
    "james", "maria",  "wei",    "aisha",  "carlos", "yuki",   "elena",
    "omar",  "priya",  "lukas",  "sofia",  "chen",   "amara",  "dmitri",
    "fatima", "henrik", "ingrid", "jorge",  "keiko",  "liam",   "nadia",
    "owen",  "paula",  "rahul",  "sanna",  "tomas",  "ursula", "viktor",
    "wanda", "xavier", "yasmin", "zoltan"};

const std::vector<std::string> kLastNames = {
    "anderson", "baranov", "chen",     "dubois",   "eriksson", "fischer",
    "garcia",   "haddad",  "ivanova",  "johansson", "kimura",  "larsen",
    "moreau",   "nakamura", "oconnor", "petrov",   "quintero", "rossi",
    "sato",     "tanaka",  "ueda",     "varga",    "weber",    "xu",
    "yamamoto", "zhang",   "kowalski", "lindgren", "martinez", "novak"};

const std::vector<std::string> kVenues = {
    "sigmod", "vldb", "icde", "kdd",  "cikm", "edbt",
    "wsdm",   "www",  "acl",  "icml", "aaai", "ijcai"};

const std::vector<std::string> kVenueLongForms = {
    "acm conference on management of data",
    "international conference on very large data bases",
    "ieee international conference on data engineering",
    "acm conference on knowledge discovery and data mining",
    "conference on information and knowledge management",
    "international conference on extending database technology",
    "conference on web search and data mining",
    "the web conference",
    "meeting of the association for computational linguistics",
    "international conference on machine learning",
    "conference on artificial intelligence",
    "international joint conference on artificial intelligence"};

const std::vector<std::string> kUsCities = {
    "austin",      "boston",  "chicago",  "denver",    "el paso",
    "fresno",      "houston", "madison",  "nashville", "oakland",
    "phoenix",     "raleigh", "seattle",  "tucson",    "omaha",
    "portland",    "atlanta", "dallas",   "memphis",   "columbus"};

const std::vector<std::string> kEuCities = {
    "marburg",  "stollberg", "pratteln", "berlin",   "osnabruck",
    "ghent",    "tampere",   "linz",     "uppsala",  "brno",
    "gdansk",   "porto",     "leiden",   "graz",     "aarhus",
    "bologna",  "valencia",  "lyon",     "krakow",   "bergen"};

const std::vector<std::string> kUsStates = {
    "al", "ak", "az", "ca", "co", "ct", "fl", "ga", "il", "in",
    "la", "ma", "md", "mi", "mn", "nc", "nj", "nv", "ny", "oh",
    "or", "pa", "tn", "tx", "ut", "va", "wa", "wi"};

const std::vector<std::string> kUsStateNames = {
    "alabama",   "alaska",   "arizona",       "california", "colorado",
    "connecticut", "florida", "georgia",      "illinois",   "indiana",
    "louisiana", "massachusetts", "maryland", "michigan",   "minnesota",
    "north carolina", "new jersey", "nevada", "new york",   "ohio",
    "oregon",    "pennsylvania", "tennessee", "texas",      "utah",
    "virginia",  "washington",   "wisconsin"};

const std::vector<std::string> kCountries = {
    "germany", "france", "japan",  "brazil", "canada",  "india",
    "mexico",  "norway", "poland", "spain",  "sweden",  "turkey",
    "egypt",   "kenya",  "chile",  "peru",   "austria", "belgium"};

const std::vector<std::string> kLanguages = {
    "english", "spanish", "polski",  "afrikaans", "turkish", "french",
    "german",  "italian", "swahili", "hindi",     "japanese", "korean",
    "dutch",   "swedish", "finnish", "magyar"};

const std::vector<std::string> kCuisines = {
    "italian",  "mexican", "thai",     "indian",  "french",   "japanese",
    "korean",   "greek",   "spanish",  "vietnamese", "ethiopian", "lebanese",
    "american", "cajun",   "barbecue", "seafood"};

const std::vector<std::string> kRestaurantWords = {
    "golden", "harbor", "garden",  "corner",  "royal",  "rustic",
    "urban",  "coastal", "hidden", "velvet",  "copper", "willow",
    "lantern", "ember",  "saffron", "juniper", "marble", "cedar",
    "tavern", "bistro",  "kitchen", "grill",   "house",  "cafe"};

const std::vector<std::string> kGenres = {
    "rock",  "pop",   "jazz",    "blues",   "country", "electronic",
    "folk",  "metal", "hip-hop", "classical", "reggae", "ambient"};

const std::vector<std::string> kSongWords = {
    "midnight", "river",  "echo",    "golden",  "wild",    "silver",
    "broken",   "summer", "winter",  "distant", "electric", "velvet",
    "falling",  "rising", "shadow",  "light",   "thunder", "whisper",
    "horizon",  "ocean",  "fire",    "rain",    "road",    "heart"};

const std::vector<std::string> kBeerStyles = {
    "ipa",    "stout",  "porter",   "lager",    "pilsner", "saison",
    "amber ale", "pale ale", "wheat beer", "sour",  "dubbel",  "tripel",
    "cider",  "mead",   "kolsch",   "bock"};

const std::vector<std::string> kBeerWords = {
    "hazy",   "hoppy",  "amber",  "dark",    "golden", "rustic",
    "raspberry", "citrus", "smoked", "barrel", "imperial", "session",
    "nectar", "harvest", "winter", "summit",  "canyon", "meadow"};

const std::vector<std::string> kBreweryWords = {
    "stone",   "river",  "mountain", "valley",  "harbor", "prairie",
    "redwood", "copper", "anchor",   "lantern", "summit", "canyon",
    "brewing", "brewery", "ales",    "works",   "beerworks", "meadery"};

const std::vector<std::string> kCompanySuffixes = {
    "inc", "llc", "corp", "ltd", "co", "group", "holdings", "partners"};

const std::vector<std::string> kSportsClubs = {
    "ams", "sdsm", "gakw", "wsm", "dcm", "rvt", "klb", "pfx",
    "qrn", "tbk",  "uvw",  "xyz", "lmn", "opq", "rst", "hjk"};

const std::vector<std::string> kBaseballEvents = {
    "single, left field",  "pop fly out, center field", "strikeout",
    "pitcher to first base", "walk",                    "double, right field",
    "ground out, shortstop", "home run, left field",    "sacrifice bunt",
    "fly out, right field",  "stolen base",             "hit by pitch"};

const std::vector<std::string> kBallGameResults = {
    "win",  "loss", "win, 3-1", "3-1 l", "w 9-0",  "l 2-4",
    "draw", "win, 2-0", "0-3 l", "w 5-2", "tie, 1-1", "win, 4-3"};

// Mutually interchangeable token groups: synonyms, abbreviations, unit and
// format variants. One group per line.
const std::vector<std::vector<std::string>> kSynonymGroups = {
    {"laptop", "notebook"},
    {"television", "tv"},
    {"photo", "picture", "image"},
    {"wireless", "cordless"},
    {"deluxe", "dlx"},
    {"edition", "ed"},
    {"professional", "pro"},
    {"premium", "prm"},
    {"portable", "travel-size"},
    {"compact", "mini"},
    {"advanced", "adv"},
    {"standard", "std"},
    {"inch", "in"},
    {"gigabyte", "gb"},
    {"megapixel", "mp"},
    {"version", "ver", "v"},
    {"series", "ser"},
    {"black", "blk"},
    {"silver", "slv"},
    {"white", "wht"},
    {"international", "intl"},
    {"conference", "conf"},
    {"proceedings", "proc"},
    {"journal", "j"},
    {"transactions", "trans"},
    {"management", "mgmt"},
    {"engineering", "eng"},
    {"optimization", "optimisation"},
    {"database", "db"},
    {"software", "sw"},
    {"hardware", "hw"},
    {"microphone", "mic"},
    {"immersion", "immers"},
    {"street", "st"},
    {"avenue", "ave"},
    {"road", "rd"},
    {"north", "n"},
    {"south", "s"},
    {"east", "e"},
    {"west", "w"},
    {"restaurant", "rest"},
    {"kitchen", "kitchn"},
    {"company", "co"},
    {"incorporated", "inc"},
    {"limited", "ltd"},
    {"brewing", "brewery", "brew"},
    {"headphones", "earphones"},
    {"speaker", "loudspeaker"},
    {"charger", "charging-dock"},
    {"adapter", "adaptor"},
    {"learning", "ml"},
    {"second", "2nd"},
    {"third", "3rd"},
    {"fourth", "4th"},
    {"fifth", "5th"},
};
// NOLINTEND
}  // namespace

const std::vector<std::string>& WordPools::Brands() { return kBrands; }
const std::vector<std::string>& WordPools::ProductCategories() {
  return kProductCategories;
}
const std::vector<std::string>& WordPools::ProductAdjectives() {
  return kProductAdjectives;
}
const std::vector<std::string>& WordPools::TitleWords() { return kTitleWords; }
const std::vector<std::string>& WordPools::FirstNames() { return kFirstNames; }
const std::vector<std::string>& WordPools::LastNames() { return kLastNames; }
const std::vector<std::string>& WordPools::Venues() { return kVenues; }
const std::vector<std::string>& WordPools::VenueLongForms() {
  return kVenueLongForms;
}
const std::vector<std::string>& WordPools::UsCities() { return kUsCities; }
const std::vector<std::string>& WordPools::EuCities() { return kEuCities; }
const std::vector<std::string>& WordPools::UsStates() { return kUsStates; }
const std::vector<std::string>& WordPools::UsStateNames() {
  return kUsStateNames;
}
const std::vector<std::string>& WordPools::Countries() { return kCountries; }
const std::vector<std::string>& WordPools::Languages() { return kLanguages; }
const std::vector<std::string>& WordPools::Cuisines() { return kCuisines; }
const std::vector<std::string>& WordPools::RestaurantWords() {
  return kRestaurantWords;
}
const std::vector<std::string>& WordPools::Genres() { return kGenres; }
const std::vector<std::string>& WordPools::SongWords() { return kSongWords; }
const std::vector<std::string>& WordPools::BeerStyles() { return kBeerStyles; }
const std::vector<std::string>& WordPools::BeerWords() { return kBeerWords; }
const std::vector<std::string>& WordPools::BreweryWords() {
  return kBreweryWords;
}
const std::vector<std::string>& WordPools::CompanySuffixes() {
  return kCompanySuffixes;
}
const std::vector<std::string>& WordPools::SportsClubs() {
  return kSportsClubs;
}
const std::vector<std::string>& WordPools::BaseballEvents() {
  return kBaseballEvents;
}
const std::vector<std::string>& WordPools::BallGameResults() {
  return kBallGameResults;
}

SynonymDict::SynonymDict() : groups_(kSynonymGroups) {
  for (size_t g = 0; g < groups_.size(); ++g) {
    for (const auto& tok : groups_[g]) {
      index_.emplace_back(tok, static_cast<int>(g));
    }
  }
  std::sort(index_.begin(), index_.end());
}

const SynonymDict& SynonymDict::Default() {
  static const SynonymDict* dict = new SynonymDict();
  return *dict;
}

int SynonymDict::GroupOf(const std::string& token) const {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), token,
      [](const auto& entry, const std::string& t) { return entry.first < t; });
  if (it != index_.end() && it->first == token) return it->second;
  return -1;
}

bool SynonymDict::HasSynonym(const std::string& token) const {
  return GroupOf(token) >= 0;
}

std::string SynonymDict::Sample(const std::string& token, Rng* rng) const {
  const int g = GroupOf(token);
  if (g < 0) return token;
  const auto& group = groups_[static_cast<size_t>(g)];
  // Sample among the other members.
  std::vector<std::string> others;
  for (const auto& t : group) {
    if (t != token) others.push_back(t);
  }
  if (others.empty()) return token;
  return others[static_cast<size_t>(rng->UniformInt(
      static_cast<int>(others.size())))];
}

std::vector<std::string> SynonymDict::Lookup(const std::string& token) const {
  const int g = GroupOf(token);
  if (g < 0) return {};
  std::vector<std::string> out;
  for (const auto& t : groups_[static_cast<size_t>(g)]) {
    if (t != token) out.push_back(t);
  }
  return out;
}

std::string MakeModelNumber(Rng* rng) {
  static const char* kLetters = "abcdefghjkmnpqrstvwxz";
  std::string out;
  out.push_back(kLetters[rng->UniformInt(21)]);
  out.push_back(kLetters[rng->UniformInt(21)]);
  out.push_back('-');
  out += StrFormat("%d", 1000 + rng->UniformInt(9000));
  return out;
}

std::string MakePhoneNumber(Rng* rng) {
  return StrFormat("%03d-%03d-%04d", 200 + rng->UniformInt(700),
                   100 + rng->UniformInt(900), rng->UniformInt(10000));
}

}  // namespace sudowoodo::data
