// Vocabulary pools and the synonym/abbreviation dictionary used by the
// synthetic dataset generators and by the token_repl / token_insert data
// augmentation operators.
//
// The paper's generators of semantic-preserving variation come from external
// resources (word embeddings, Wikipedia revisions); this built-in dictionary
// plays that role here, and crucially it is *shared* between the data
// generator (which uses it to create matching-but-differently-worded entity
// mentions) and the DA operators (which use it to create positive views), so
// contrastive pre-training can learn exactly the invariances the matching
// task needs - the same coupling the real system gets from using
// domain-appropriate DA.

#ifndef SUDOWOODO_DATA_WORD_POOLS_H_
#define SUDOWOODO_DATA_WORD_POOLS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace sudowoodo::data {

/// Named word pools for the generators.
class WordPools {
 public:
  static const std::vector<std::string>& Brands();
  static const std::vector<std::string>& ProductCategories();
  static const std::vector<std::string>& ProductAdjectives();
  static const std::vector<std::string>& TitleWords();       // citations
  static const std::vector<std::string>& FirstNames();
  static const std::vector<std::string>& LastNames();
  static const std::vector<std::string>& Venues();           // short forms
  static const std::vector<std::string>& VenueLongForms();   // aligned
  static const std::vector<std::string>& UsCities();
  static const std::vector<std::string>& EuCities();
  static const std::vector<std::string>& UsStates();         // abbreviations
  static const std::vector<std::string>& UsStateNames();     // aligned
  static const std::vector<std::string>& Countries();
  static const std::vector<std::string>& Languages();
  static const std::vector<std::string>& Cuisines();
  static const std::vector<std::string>& RestaurantWords();
  static const std::vector<std::string>& Genres();
  static const std::vector<std::string>& SongWords();
  static const std::vector<std::string>& BeerStyles();
  static const std::vector<std::string>& BeerWords();
  static const std::vector<std::string>& BreweryWords();
  static const std::vector<std::string>& CompanySuffixes();
  static const std::vector<std::string>& SportsClubs();
  static const std::vector<std::string>& BaseballEvents();
  static const std::vector<std::string>& BallGameResults();
};

/// Bidirectional synonym / abbreviation dictionary.
class SynonymDict {
 public:
  /// The process-wide dictionary (immutable after construction).
  static const SynonymDict& Default();

  /// True if `token` has at least one synonym.
  bool HasSynonym(const std::string& token) const;

  /// A synonym of `token` sampled uniformly (never returns `token` itself);
  /// returns `token` unchanged when no synonym exists.
  std::string Sample(const std::string& token, Rng* rng) const;

  /// All synonyms of `token` (possibly empty).
  std::vector<std::string> Lookup(const std::string& token) const;

  int size() const { return static_cast<int>(groups_.size()); }

 private:
  SynonymDict();
  /// groups_[i] is a set of mutually interchangeable tokens.
  std::vector<std::vector<std::string>> groups_;
  std::vector<std::pair<std::string, int>> index_;  // token -> group, sorted
  int GroupOf(const std::string& token) const;
};

/// Random alphanumeric model number like "mx-4820" (stable per rng stream).
std::string MakeModelNumber(Rng* rng);

/// Random US-style phone number.
std::string MakePhoneNumber(Rng* rng);

}  // namespace sudowoodo::data

#endif  // SUDOWOODO_DATA_WORD_POOLS_H_
