// Synthetic Entity Matching benchmark generator.
//
// The paper evaluates on the DeepMatcher datasets (Table II / XVII). Those
// datasets are not redistributable here, so this module generates
// schema- and difficulty-matched stand-ins with known ground truth:
//
//  * entities are drawn from domain generators (products, citations,
//    restaurants, music, beer) with family structure - "sibling" entities
//    share brand/series/author tokens, producing the high-Jaccard
//    non-matches that make AG and WA hard (Table XVI);
//  * Table B renders each entity through a noise channel (synonyms,
//    abbreviations, token drops, typos, missing attributes, number
//    reformatting), producing the low-Jaccard matches of the hard datasets;
//  * labeled pairs mix gold matches, same-family hard negatives and random
//    negatives at the paper's positive ratios, split 3:1:1.
//
// The noise channel shares its synonym dictionary with the DA operators
// (see data/word_pools.h for why this mirrors the real system).

#ifndef SUDOWOODO_DATA_EM_DATASET_H_
#define SUDOWOODO_DATA_EM_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "data/table.h"

namespace sudowoodo::data {

/// A labeled entity pair: row indexes into tables A and B plus the
/// match (1) / non-match (0) label.
struct LabeledPair {
  int a_idx = 0;
  int b_idx = 0;
  int label = 0;
};

/// One generated EM benchmark.
struct EmDataset {
  std::string name;
  std::string code;
  Table table_a;
  Table table_b;
  /// Ground-truth entity id per row (hidden from the methods under test;
  /// used only for evaluation).
  std::vector<int> entity_a;
  std::vector<int> entity_b;
  std::vector<LabeledPair> train;
  std::vector<LabeledPair> valid;
  std::vector<LabeledPair> test;
  /// All matching (a_row, b_row) pairs; the blocking recall denominator.
  std::vector<std::pair<int, int>> gold_matches;

  int TotalPairs() const {
    return static_cast<int>(train.size() + valid.size() + test.size());
  }
  double PositiveRatio() const;
};

/// Entity domains for the generator.
enum class EmDomain { kProduct, kCitation, kRestaurant, kMusic, kBeer };

/// Generator parameters; see GetEmSpec for the per-benchmark presets.
struct EmSpec {
  std::string name;
  std::string code;
  EmDomain domain = EmDomain::kProduct;
  int n_entities = 250;        // distinct entities seeded in table A
  int family_size = 3;         // avg entities sharing brand/series tokens
  double b_match_rate = 0.85;  // fraction of A entities mirrored in B
  int b_extra = 80;            // B-only entities
  double noise = 0.35;         // perturbation strength of the B renderer
  int n_pairs = 1500;          // labeled pairs across train/valid/test
  double pos_ratio = 0.11;
  double hard_negative_frac = 0.6;  // same-family share of negatives
  uint64_t seed = 1;
};

/// Preset for one of the paper's benchmarks. Codes: AB, AG, DA, DS, WA
/// (Table II) plus BR (Beer), FZ (Fodors-Zagats), IA (iTunes-Amazon)
/// (Table XVII). Aborts on unknown code.
EmSpec GetEmSpec(const std::string& code);

/// The five semi-supervised benchmark codes, in paper order.
const std::vector<std::string>& SemiSupEmCodes();

/// All eight fully-supervised benchmark codes (Table XVII).
const std::vector<std::string>& FullSupEmCodes();

/// Generates a dataset from a spec (deterministic given spec.seed).
EmDataset GenerateEm(const EmSpec& spec);

/// Applies the generator's noise channel to a token sequence (exposed for
/// tests and for the profiling experiments).
std::vector<std::string> PerturbTokens(const std::vector<std::string>& tokens,
                                       double noise, Rng* rng);

}  // namespace sudowoodo::data

#endif  // SUDOWOODO_DATA_EM_DATASET_H_
