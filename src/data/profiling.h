// Lightweight data profiling over tables: per-column value frequencies and
// the value co-occurrence ("vicinity") model of Baran. Shared by the
// Baran/Raha baselines and by the cleaning pipeline's serialization, which
// surfaces these profile signals as serialized tokens - the substitution
// for the language knowledge a RoBERTa-scale LM contributes in the paper
// (see DESIGN.md §1.2).

#ifndef SUDOWOODO_DATA_PROFILING_H_
#define SUDOWOODO_DATA_PROFILING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"

namespace sudowoodo::data {

/// Per-column relative value frequencies with bucketing.
class ColumnProfiles {
 public:
  explicit ColumnProfiles(const Table& table);

  /// Relative frequency of `value` in column `col` (0 when unseen).
  double Frequency(int col, const std::string& value) const;

  /// Coarse bucket: "rare" (<=1 occurrence), "low", "mid", "high".
  std::string FrequencyBucket(int col, const std::string& value) const;

 private:
  int n_rows_ = 0;
  std::vector<std::unordered_map<std::string, int>> freq_;
};

/// Baran's vicinity model: for every ordered column pair (c2 -> c), the
/// majority value of c among rows sharing a value at c2. Detects and
/// repairs violated attribute dependencies.
class VicinityModel {
 public:
  explicit VicinityModel(const Table& table);

  /// Fraction of dependable context columns whose majority co-occurring
  /// value for `col` equals `cand` given `row`'s context in `table`.
  double Agreement(const Table& table, int row, int col,
                   const std::string& cand) const;

  /// The single strongest implied value for (row, col), or "" when no
  /// context is dependable.
  std::string ImpliedValue(const Table& table, int row, int col) const;

 private:
  /// Majority value + dependability for one (context value, target col).
  struct Majority {
    std::string value;
    bool dependable = false;
  };
  const Majority* Lookup(int c2, int c, const std::string& context_value) const;

  int n_cols_ = 0;
  std::vector<std::unordered_map<std::string, Majority>> majority_;
};

/// Per-column character-bigram language model with add-one smoothing.
/// Typos introduce bigrams that are rare for the column, so the average
/// per-character log-likelihood is a label-free well-formedness signal for
/// columns whose values are unique (names, phones, addresses).
class CharBigramModel {
 public:
  explicit CharBigramModel(const Table& table);

  /// Mean log-probability per character of `value` under column `col`'s
  /// bigram distribution; higher = more plausible. Empty values score the
  /// column's minimum.
  double Score(int col, const std::string& value) const;

 private:
  static int Bucket(char c);
  /// counts_[col][prev * kAlphabet + next]
  static constexpr int kAlphabet = 40;
  std::vector<std::vector<int>> counts_;
  std::vector<std::vector<int>> row_totals_;
};

}  // namespace sudowoodo::data

#endif  // SUDOWOODO_DATA_PROFILING_H_
