#include "data/em_dataset.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "data/word_pools.h"
#include "text/tokenizer.h"

namespace sudowoodo::data {

namespace {

/// A generated entity: canonical typed fields, rendered differently into
/// tables A and B.
struct Entity {
  int id = 0;
  int family = 0;
  // Generic named fields; meaning depends on the domain.
  std::string brand;                  // brand / venue / artist / brewery
  std::string series;                 // series word / album / style
  std::string model;                  // model number / year / phone
  std::vector<std::string> words;     // title / name / descriptor words
  std::vector<std::string> people;    // authors / artist names
  double number = 0.0;                // price / abv
};

std::string Pick(const std::vector<std::string>& pool, Rng* rng) {
  return pool[static_cast<size_t>(
      rng->UniformInt(static_cast<int>(pool.size())))];
}

std::string ApplyTypo(const std::string& word, Rng* rng) {
  if (word.size() < 3) return word;
  std::string out = word;
  const int kind = rng->UniformInt(3);
  const int pos = 1 + rng->UniformInt(static_cast<int>(word.size()) - 2);
  switch (kind) {
    case 0:  // drop a character
      out.erase(static_cast<size_t>(pos), 1);
      break;
    case 1:  // swap adjacent characters
      std::swap(out[static_cast<size_t>(pos)],
                out[static_cast<size_t>(pos - 1)]);
      break;
    default:  // duplicate a character
      out.insert(static_cast<size_t>(pos), 1, out[static_cast<size_t>(pos)]);
      break;
  }
  return out;
}

std::vector<Entity> MakeEntities(const EmSpec& spec, Rng* rng) {
  std::vector<Entity> entities;
  entities.reserve(static_cast<size_t>(spec.n_entities));
  const int n_families =
      std::max(1, spec.n_entities / std::max(1, spec.family_size));
  // Family-level shared fields.
  struct Family {
    std::string brand, series;
    std::vector<std::string> people;
    std::vector<std::string> shared_words;
  };
  std::vector<Family> families;
  families.reserve(static_cast<size_t>(n_families));
  for (int f = 0; f < n_families; ++f) {
    Family fam;
    switch (spec.domain) {
      case EmDomain::kProduct:
        fam.brand = Pick(WordPools::Brands(), rng);
        fam.series = Pick(WordPools::ProductAdjectives(), rng);
        fam.shared_words = {Pick(WordPools::ProductCategories(), rng)};
        break;
      case EmDomain::kCitation: {
        const int n_auth = 2 + rng->UniformInt(2);
        for (int i = 0; i < n_auth; ++i) {
          fam.people.push_back(Pick(WordPools::FirstNames(), rng) + " " +
                               Pick(WordPools::LastNames(), rng));
        }
        const int venue_idx =
            rng->UniformInt(static_cast<int>(WordPools::Venues().size()));
        fam.brand = WordPools::Venues()[static_cast<size_t>(venue_idx)];
        for (int i = 0; i < 3; ++i) {
          fam.shared_words.push_back(Pick(WordPools::TitleWords(), rng));
        }
        break;
      }
      case EmDomain::kRestaurant:
        fam.brand = Pick(WordPools::RestaurantWords(), rng);
        fam.series = Pick(WordPools::Cuisines(), rng);
        fam.shared_words = {Pick(WordPools::UsCities(), rng)};
        break;
      case EmDomain::kMusic:
        fam.brand = Pick(WordPools::FirstNames(), rng) + " " +
                    Pick(WordPools::LastNames(), rng);  // artist
        fam.series = Pick(WordPools::SongWords(), rng) + " " +
                     Pick(WordPools::SongWords(), rng);  // album
        fam.shared_words = {Pick(WordPools::Genres(), rng)};
        break;
      case EmDomain::kBeer:
        fam.brand = Pick(WordPools::BreweryWords(), rng) + " " +
                    Pick(WordPools::BreweryWords(), rng);  // brewery
        fam.series = Pick(WordPools::BeerStyles(), rng);
        fam.shared_words = {Pick(WordPools::BeerWords(), rng)};
        break;
    }
    families.push_back(std::move(fam));
  }

  for (int e = 0; e < spec.n_entities; ++e) {
    Entity ent;
    ent.id = e;
    ent.family = e % n_families;
    const Family& fam = families[static_cast<size_t>(ent.family)];
    ent.brand = fam.brand;
    ent.series = fam.series;
    ent.people = fam.people;
    ent.words = fam.shared_words;
    switch (spec.domain) {
      case EmDomain::kProduct:
        ent.model = MakeModelNumber(rng);
        ent.words.push_back(Pick(WordPools::ProductAdjectives(), rng));
        ent.words.push_back(Pick(WordPools::ProductAdjectives(), rng));
        ent.number = 10.0 + rng->Uniform() * 990.0;
        break;
      case EmDomain::kCitation:
        ent.model = StrFormat("%d", 1998 + rng->UniformInt(22));  // year
        for (int i = 0; i < 4; ++i) {
          ent.words.push_back(Pick(WordPools::TitleWords(), rng));
        }
        break;
      case EmDomain::kRestaurant:
        ent.model = MakePhoneNumber(rng);
        ent.words.push_back(Pick(WordPools::RestaurantWords(), rng));
        ent.number = 100 + rng->UniformInt(9900);  // street number
        break;
      case EmDomain::kMusic:
        ent.model = StrFormat("%d:%02d", 2 + rng->UniformInt(4),
                              rng->UniformInt(60));  // duration
        ent.words.push_back(Pick(WordPools::SongWords(), rng));
        ent.words.push_back(Pick(WordPools::SongWords(), rng));
        ent.number = 0.69 + 0.3 * rng->UniformInt(4);  // price
        break;
      case EmDomain::kBeer:
        ent.model = StrFormat("%.1f", 4.0 + rng->Uniform() * 8.0);  // abv
        ent.words.push_back(Pick(WordPools::BeerWords(), rng));
        ent.number = 8 + 4 * rng->UniformInt(3);  // ounces
        break;
    }
    entities.push_back(std::move(ent));
  }
  return entities;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  return JoinStrings(tokens, " ");
}

/// Schema + renderer for table A (canonical side).
Row RenderA(const Entity& e, EmDomain domain) {
  switch (domain) {
    case EmDomain::kProduct:
      return {e.brand + " " + e.series + " " + JoinTokens(e.words) + " " +
                  e.model,
              e.series + " " + e.words[0] + " with " +
                  JoinTokens({e.words.begin() + 1, e.words.end()}),
              StrFormat("%.2f", e.number)};
    case EmDomain::kCitation:
      return {JoinTokens(e.words), JoinStrings(e.people, ", "), e.brand,
              e.model};
    case EmDomain::kRestaurant:
      return {e.brand + " " + e.words.back() + " " + e.series,
              StrFormat("%d %s st", static_cast<int>(e.number),
                        e.words[0].c_str()),
              e.words[0], e.model, e.series};
    case EmDomain::kMusic:
      return {JoinTokens({e.words.begin() + 1, e.words.end()}), e.brand,
              e.series, e.words[0], e.model, StrFormat("%.2f", e.number)};
    case EmDomain::kBeer:
      return {e.words[1] + " " + e.words[0] + " " + e.series, e.series,
              StrFormat("%.0f oz", e.number), e.model, e.brand};
  }
  return {};
}

const std::vector<std::string>& SchemaA(EmDomain domain) {
  static const std::vector<std::string> kProduct = {"name", "description",
                                                    "price"};
  static const std::vector<std::string> kCitation = {"title", "authors",
                                                     "venue", "year"};
  static const std::vector<std::string> kRestaurant = {
      "name", "address", "city", "phone", "type"};
  static const std::vector<std::string> kMusic = {
      "song_name", "artist_name", "album_name", "genre", "time", "price"};
  static const std::vector<std::string> kBeer = {
      "beer_name", "style", "ounces", "abv", "brewery_name"};
  switch (domain) {
    case EmDomain::kProduct:
      return kProduct;
    case EmDomain::kCitation:
      return kCitation;
    case EmDomain::kRestaurant:
      return kRestaurant;
    case EmDomain::kMusic:
      return kMusic;
    case EmDomain::kBeer:
      return kBeer;
  }
  return kProduct;
}

const std::vector<std::string>& SchemaB(EmDomain domain) {
  static const std::vector<std::string> kProduct = {"title", "manufacturer",
                                                    "price"};
  static const std::vector<std::string> kCitation = {"title", "authors",
                                                     "venue", "year"};
  static const std::vector<std::string> kRestaurant = {
      "name", "addr", "city", "phone", "type"};
  static const std::vector<std::string> kMusic = {
      "song_name", "artist_name", "album_name", "genre", "time", "price"};
  static const std::vector<std::string> kBeer = {
      "beer_name", "style", "ounces", "abv", "brewery_name"};
  switch (domain) {
    case EmDomain::kProduct:
      return kProduct;
    case EmDomain::kCitation:
      return kCitation;
    case EmDomain::kRestaurant:
      return kRestaurant;
    case EmDomain::kMusic:
      return kMusic;
    case EmDomain::kBeer:
      return kBeer;
  }
  return kProduct;
}

/// Renders the B-side view of an entity through the noise channel.
Row RenderB(const Entity& e, EmDomain domain, double noise, Rng* rng) {
  auto perturb = [&](const std::string& s) {
    return JoinTokens(PerturbTokens(text::Tokenize(s), noise, rng));
  };
  switch (domain) {
    case EmDomain::kProduct: {
      // Harder datasets drop the discriminative model number from the
      // title more often, abbreviate the brand storefront-style, and
      // damage the price. Both perturbations specifically break
      // token-overlap methods (TF-IDF blockers, fuzzy joins, Jaccard)
      // while staying learnable for representation models.
      std::string brand = e.brand;
      if (rng->Bernoulli(noise * 0.55)) brand = brand.substr(0, 3);
      std::string title = brand + " " + JoinTokens(e.words) + " " + e.series;
      if (!rng->Bernoulli(noise * 0.5)) title += " " + e.model;
      std::string manufacturer = rng->Bernoulli(noise * 0.5) ? "" : brand;
      double price = e.number;
      if (rng->Bernoulli(noise * 0.4)) {
        price *= rng->UniformReal(0.85, 1.18);  // marketplace price drift
      }
      return {perturb(title), manufacturer, StrFormat("%.2f", price)};
    }
    case EmDomain::kCitation: {
      std::string title = JoinTokens(e.words);
      // Author formatting differences: "first last" -> "f. last".
      std::vector<std::string> authors;
      for (const auto& person : e.people) {
        auto parts = SplitString(person, " ");
        if (rng->Bernoulli(0.5) && parts.size() == 2) {
          authors.push_back(parts[0].substr(0, 1) + ". " + parts[1]);
        } else {
          authors.push_back(person);
        }
      }
      std::string venue = e.brand;
      const auto& shorts = WordPools::Venues();
      for (size_t v = 0; v < shorts.size(); ++v) {
        if (shorts[v] == e.brand && rng->Bernoulli(0.5)) {
          venue = WordPools::VenueLongForms()[v];
        }
      }
      if (rng->Bernoulli(noise * 0.6)) venue = "";      // Scholar-style gap
      std::string author_str = JoinStrings(authors, ", ");
      if (rng->Bernoulli(noise * 0.4)) author_str = "";
      return {perturb(title), author_str, venue, e.model};
    }
    case EmDomain::kRestaurant: {
      std::string name = e.brand + " " + e.words.back() + " " + e.series;
      std::string addr = StrFormat("%d %s street", static_cast<int>(e.number),
                                   e.words[0].c_str());
      return {perturb(name), perturb(addr), e.words[0], e.model, e.series};
    }
    case EmDomain::kMusic: {
      std::string song = JoinTokens({e.words.begin() + 1, e.words.end()});
      if (rng->Bernoulli(noise * 0.4)) song += " [explicit]";
      double price = e.number + (rng->Bernoulli(0.3) ? 0.3 : 0.0);
      return {perturb(song), e.brand, perturb(e.series), e.words[0], e.model,
              StrFormat("$ %.2f", price)};
    }
    case EmDomain::kBeer: {
      std::string bname = e.words[1] + " " + e.words[0] + " " + e.series;
      return {perturb(bname), e.series,
              StrFormat("%.1f ounce", e.number), e.model + "%",
              perturb(e.brand)};
    }
  }
  return {};
}

}  // namespace

std::vector<std::string> PerturbTokens(const std::vector<std::string>& tokens,
                                       double noise, Rng* rng) {
  const SynonymDict& dict = SynonymDict::Default();
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const auto& tok : tokens) {
    if (rng->Bernoulli(noise * 0.18)) continue;  // token drop
    std::string t = tok;
    if (dict.HasSynonym(t) && rng->Bernoulli(noise * 0.8)) {
      t = dict.Sample(t, rng);  // synonym / abbreviation swap
    } else if (rng->Bernoulli(noise * 0.12)) {
      t = ApplyTypo(t, rng);
    }
    out.push_back(std::move(t));
  }
  // Occasionally swap two adjacent tokens (word-order noise).
  if (out.size() >= 2 && rng->Bernoulli(noise * 0.35)) {
    const int i = rng->UniformInt(static_cast<int>(out.size()) - 1);
    std::swap(out[static_cast<size_t>(i)], out[static_cast<size_t>(i) + 1]);
  }
  if (out.empty() && !tokens.empty()) out.push_back(tokens[0]);
  return out;
}

double EmDataset::PositiveRatio() const {
  int pos = 0;
  for (const auto& p : train) pos += p.label;
  for (const auto& p : valid) pos += p.label;
  for (const auto& p : test) pos += p.label;
  const int total = TotalPairs();
  return total == 0 ? 0.0 : static_cast<double>(pos) / total;
}

EmSpec GetEmSpec(const std::string& code) {
  EmSpec s;
  s.code = code;
  if (code == "AB") {
    s.name = "Abt-Buy";
    s.domain = EmDomain::kProduct;
    s.n_entities = 240;
    s.family_size = 3;
    s.b_match_rate = 0.85;
    s.b_extra = 60;
    s.noise = 0.42;
    s.n_pairs = 1900;
    s.pos_ratio = 0.107;
    s.seed = 11;
  } else if (code == "AG") {
    s.name = "Amazon-Google";
    s.domain = EmDomain::kProduct;
    s.n_entities = 280;
    s.family_size = 5;
    s.b_match_rate = 0.8;
    s.b_extra = 240;
    s.noise = 0.62;
    s.n_pairs = 2200;
    s.pos_ratio = 0.102;
    s.hard_negative_frac = 0.75;
    s.seed = 12;
  } else if (code == "DA") {
    s.name = "DBLP-ACM";
    s.domain = EmDomain::kCitation;
    s.n_entities = 320;
    s.family_size = 2;
    s.b_match_rate = 0.9;
    s.b_extra = 40;
    s.noise = 0.15;
    s.n_pairs = 2400;
    s.pos_ratio = 0.180;
    s.hard_negative_frac = 0.4;
    s.seed = 13;
  } else if (code == "DS") {
    s.name = "DBLP-Scholar";
    s.domain = EmDomain::kCitation;
    s.n_entities = 340;
    s.family_size = 3;
    s.b_match_rate = 0.9;
    s.b_extra = 420;
    s.noise = 0.3;
    s.n_pairs = 2600;
    s.pos_ratio = 0.186;
    s.seed = 14;
  } else if (code == "WA") {
    s.name = "Walmart-Amazon";
    s.domain = EmDomain::kProduct;
    s.n_entities = 260;
    s.family_size = 5;
    s.b_match_rate = 0.75;
    s.b_extra = 320;
    s.noise = 0.58;
    s.n_pairs = 2000;
    s.pos_ratio = 0.094;
    s.hard_negative_frac = 0.8;
    s.seed = 15;
  } else if (code == "BR") {
    s.name = "Beer";
    s.domain = EmDomain::kBeer;
    s.n_entities = 140;
    s.family_size = 3;
    s.b_match_rate = 0.7;
    s.b_extra = 70;
    s.noise = 0.35;
    s.n_pairs = 450;
    s.pos_ratio = 0.151;
    s.seed = 16;
  } else if (code == "FZ") {
    s.name = "Fodors-Zagats";
    s.domain = EmDomain::kRestaurant;
    s.n_entities = 160;
    s.family_size = 2;
    s.b_match_rate = 0.65;
    s.b_extra = 50;
    s.noise = 0.2;
    s.n_pairs = 900;
    s.pos_ratio = 0.116;
    s.hard_negative_frac = 0.3;
    s.seed = 17;
  } else if (code == "IA") {
    s.name = "iTunes-Amazon";
    s.domain = EmDomain::kMusic;
    s.n_entities = 180;
    s.family_size = 4;
    s.b_match_rate = 0.7;
    s.b_extra = 160;
    s.noise = 0.4;
    s.n_pairs = 520;
    s.pos_ratio = 0.245;
    s.seed = 18;
  } else {
    SUDO_CHECK(false && "unknown EM dataset code");
  }
  return s;
}

const std::vector<std::string>& SemiSupEmCodes() {
  static const std::vector<std::string> kCodes = {"AB", "AG", "DA", "DS",
                                                  "WA"};
  return kCodes;
}

const std::vector<std::string>& FullSupEmCodes() {
  static const std::vector<std::string> kCodes = {"AB", "AG", "BR", "DA",
                                                  "DS", "FZ", "IA", "WA"};
  return kCodes;
}

EmDataset GenerateEm(const EmSpec& spec) {
  Rng rng(spec.seed);
  EmDataset ds;
  ds.name = spec.name;
  ds.code = spec.code;
  ds.table_a.name = spec.name + "-A";
  ds.table_b.name = spec.name + "-B";
  ds.table_a.attrs = SchemaA(spec.domain);
  ds.table_b.attrs = SchemaB(spec.domain);

  std::vector<Entity> entities = MakeEntities(spec, &rng);

  // Table A: canonical renderings.
  for (const Entity& e : entities) {
    ds.table_a.rows.push_back(RenderA(e, spec.domain));
    ds.entity_a.push_back(e.id);
  }

  // Table B: noisy mirrors of a subset of A, plus B-only entities.
  std::vector<Entity> b_entities;
  for (const Entity& e : entities) {
    if (rng.Bernoulli(spec.b_match_rate)) b_entities.push_back(e);
  }
  {
    EmSpec extra_spec = spec;
    extra_spec.n_entities = spec.b_extra;
    Rng extra_rng = rng.Fork();
    std::vector<Entity> extras = MakeEntities(extra_spec, &extra_rng);
    for (Entity& e : extras) {
      e.id += spec.n_entities;  // disjoint ids: never match A
      b_entities.push_back(std::move(e));
    }
  }
  rng.Shuffle(&b_entities);
  for (const Entity& e : b_entities) {
    ds.table_b.rows.push_back(RenderB(e, spec.domain, spec.noise, &rng));
    ds.entity_b.push_back(e.id);
  }

  // Gold matches.
  std::unordered_map<int, std::vector<int>> a_rows_by_entity;
  for (int i = 0; i < ds.table_a.num_rows(); ++i) {
    a_rows_by_entity[ds.entity_a[static_cast<size_t>(i)]].push_back(i);
  }
  for (int j = 0; j < ds.table_b.num_rows(); ++j) {
    auto it = a_rows_by_entity.find(ds.entity_b[static_cast<size_t>(j)]);
    if (it == a_rows_by_entity.end()) continue;
    for (int i : it->second) ds.gold_matches.emplace_back(i, j);
  }

  // Labeled pairs: positives from gold matches; negatives split between
  // same-family hard negatives and uniform random negatives.
  const int want_pos =
      std::min(static_cast<int>(ds.gold_matches.size()),
               static_cast<int>(spec.n_pairs * spec.pos_ratio + 0.5));
  const int want_neg = spec.n_pairs - want_pos;

  std::vector<LabeledPair> pairs;
  {
    std::vector<int> pos_idx = rng.SampleWithoutReplacement(
        static_cast<int>(ds.gold_matches.size()), want_pos);
    for (int pi : pos_idx) {
      const auto& [ai, bi] = ds.gold_matches[static_cast<size_t>(pi)];
      pairs.push_back({ai, bi, 1});
    }
  }
  // Index B rows by family for hard negatives.
  std::unordered_map<int, std::vector<int>> b_rows_by_family;
  for (int j = 0; j < ds.table_b.num_rows(); ++j) {
    const Entity& e = b_entities[static_cast<size_t>(j)];
    b_rows_by_family[e.family].push_back(j);
  }
  std::set<std::pair<int, int>> used;
  for (const auto& gm : ds.gold_matches) used.insert(gm);
  int made_neg = 0;
  int attempts = 0;
  while (made_neg < want_neg && attempts < want_neg * 50) {
    ++attempts;
    int ai = rng.UniformInt(ds.table_a.num_rows());
    int bi = -1;
    if (rng.Bernoulli(spec.hard_negative_frac)) {
      const Entity& ea = entities[static_cast<size_t>(ai)];
      auto it = b_rows_by_family.find(ea.family);
      if (it == b_rows_by_family.end() || it->second.empty()) continue;
      bi = it->second[static_cast<size_t>(
          rng.UniformInt(static_cast<int>(it->second.size())))];
    } else {
      bi = rng.UniformInt(ds.table_b.num_rows());
    }
    if (ds.entity_a[static_cast<size_t>(ai)] ==
        ds.entity_b[static_cast<size_t>(bi)]) {
      continue;  // accidentally a match
    }
    if (!used.insert({ai, bi}).second) continue;  // duplicate pair
    pairs.push_back({ai, bi, 0});
    ++made_neg;
  }

  rng.Shuffle(&pairs);
  // 3:1:1 split, as in the original benchmarks (§VI-A).
  const int n = static_cast<int>(pairs.size());
  const int n_train = n * 3 / 5;
  const int n_valid = n / 5;
  ds.train.assign(pairs.begin(), pairs.begin() + n_train);
  ds.valid.assign(pairs.begin() + n_train, pairs.begin() + n_train + n_valid);
  ds.test.assign(pairs.begin() + n_train + n_valid, pairs.end());
  return ds;
}

}  // namespace sudowoodo::data
