// Synthetic table-column corpus for semantic type detection (§V-B, §VI-D).
//
// Mirrors the VizNet setup at reduced scale: columns are generated from a
// catalog of coarse semantic types (the ground-truth labels a Sherlock/Sato
// style classifier would predict), and many coarse types hide *fine-grained
// subtypes* (e.g. "city" splits into US cities and central-EU cities;
// "result" splits into ball-game results and baseball in-game events). The
// subtype structure is what lets Sudowoodo's column matching discover
// clusters beyond the labeled type set (Table IX).

#ifndef SUDOWOODO_DATA_COLUMN_CORPUS_H_
#define SUDOWOODO_DATA_COLUMN_CORPUS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace sudowoodo::data {

/// One table column with ground-truth coarse type and hidden subtype.
struct Column {
  std::vector<std::string> values;
  int type_id = 0;     // coarse type (the 78-type analogue)
  int subtype_id = 0;  // global fine-grained subtype id
};

/// A corpus of columns plus the type catalog.
struct ColumnCorpus {
  std::vector<Column> columns;
  std::vector<std::string> type_names;     // per coarse type id
  std::vector<std::string> subtype_names;  // per global subtype id
  std::vector<int> subtype_to_type;        // subtype -> coarse type

  int num_types() const { return static_cast<int>(type_names.size()); }
  int num_subtypes() const { return static_cast<int>(subtype_names.size()); }
};

/// Generator parameters.
struct ColumnCorpusSpec {
  int n_columns = 1200;
  int min_values = 4;
  int max_values = 10;
  uint64_t seed = 41;
};

/// Generates a corpus (deterministic given spec.seed).
ColumnCorpus GenerateColumnCorpus(const ColumnCorpusSpec& spec);

}  // namespace sudowoodo::data

#endif  // SUDOWOODO_DATA_COLUMN_CORPUS_H_
