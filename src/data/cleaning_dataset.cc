#include "data/cleaning_dataset.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "data/word_pools.h"

namespace sudowoodo::data {

namespace {

std::string Pick(const std::vector<std::string>& pool, Rng* rng) {
  return pool[static_cast<size_t>(
      rng->UniformInt(static_cast<int>(pool.size())))];
}

std::string TypoEdit(const std::string& s, Rng* rng) {
  if (s.size() < 2) return s + s;  // ensure the value changes
  std::string out = s;
  const int kind = rng->UniformInt(3);
  const int pos = rng->UniformInt(static_cast<int>(s.size()) - 1);
  switch (kind) {
    case 0:
      out.erase(static_cast<size_t>(pos), 1);
      break;
    case 1:
      std::swap(out[static_cast<size_t>(pos)],
                out[static_cast<size_t>(pos) + 1]);
      break;
    default:
      out.insert(static_cast<size_t>(pos), 1, 'x');
      break;
  }
  return out == s ? s + "x" : out;
}

/// Column-type-aware format corruption (the FI error class).
std::string FormatCorrupt(const std::string& s, Rng* rng) {
  if (s.empty()) return s;
  const int kind = rng->UniformInt(4);
  switch (kind) {
    case 0:  // append a spurious unit / symbol
      if (IsNumeric(s)) return s + (rng->Bernoulli(0.5) ? "%" : " ounce");
      return s + ".";
    case 1:  // uppercase the value
    {
      std::string out = s;
      for (auto& c : out) c = static_cast<char>(std::toupper(
          static_cast<unsigned char>(c)));
      return out;
    }
    case 2:  // strip leading digits' zero-padding or add decimals
      if (IsNumeric(s)) return s + ".0";
      return "the " + s;
    default:  // squeeze spaces
    {
      std::string out;
      for (char c : s) {
        if (c != ' ') out.push_back(c);
      }
      return out.empty() ? s : out;
    }
  }
}

/// Schema description: each column has a name and a domain generator; FD
/// groups make determinant -> dependent mappings consistent.
struct SchemaColumn {
  std::string name;
  /// 0 = free value, >0 = FD group id: the first column of the group is the
  /// determinant, later columns are functionally dependent on it.
  int fd_group = 0;
  std::function<std::string(Rng*)> gen;
};

std::vector<SchemaColumn> MakeSchema(const std::string& name) {
  std::vector<SchemaColumn> cols;
  if (name == "beers") {
    cols = {
        {"id", 0, [](Rng* rng) { return StrFormat("%d", rng->UniformInt(100000)); }},
        {"beer_name", 0,
         [](Rng* rng) {
           return Pick(WordPools::BeerWords(), rng) + " " +
                  Pick(WordPools::BeerWords(), rng) + " " +
                  Pick(WordPools::BeerStyles(), rng);
         }},
        {"style", 0, [](Rng* rng) { return Pick(WordPools::BeerStyles(), rng); }},
        {"ounces", 0,
         [](Rng* rng) { return StrFormat("%d", 8 + 4 * rng->UniformInt(3)); }},
        {"abv", 0,
         [](Rng* rng) { return StrFormat("0.0%d", 4 + rng->UniformInt(6)); }},
        {"ibu", 0, [](Rng* rng) { return StrFormat("%d", 10 + rng->UniformInt(90)); }},
        {"brewery_id", 1,
         [](Rng* rng) { return StrFormat("%d", 100 + rng->UniformInt(40)); }},
        {"brewery_name", 1,
         [](Rng* rng) {
           return Pick(WordPools::BreweryWords(), rng) + " " +
                  Pick(WordPools::BreweryWords(), rng);
         }},
        {"city", 1, [](Rng* rng) { return Pick(WordPools::UsCities(), rng); }},
        {"state", 1, [](Rng* rng) { return Pick(WordPools::UsStates(), rng); }},
    };
  } else if (name == "hospital") {
    cols = {
        {"name", 0,
         [](Rng* rng) {
           return Pick(WordPools::LastNames(), rng) + " memorial hospital";
         }},
        {"address", 0,
         [](Rng* rng) {
           return StrFormat("%d %s st", 100 + rng->UniformInt(900),
                            Pick(WordPools::LastNames(), rng).c_str());
         }},
        {"zip", 1,
         [](Rng* rng) { return StrFormat("%05d", 10000 + rng->UniformInt(50)); }},
        {"city", 1, [](Rng* rng) { return Pick(WordPools::UsCities(), rng); }},
        {"state", 1, [](Rng* rng) { return Pick(WordPools::UsStates(), rng); }},
        {"county", 1, [](Rng* rng) { return Pick(WordPools::LastNames(), rng); }},
        {"phone", 0, [](Rng* rng) { return MakePhoneNumber(rng); }},
        {"owner", 0,
         [](Rng* rng) {
           return rng->Bernoulli(0.5) ? "voluntary non-profit - private"
                                      : "government - local";
         }},
        {"measure_code", 2,
         [](Rng* rng) { return StrFormat("hf-%d", 1 + rng->UniformInt(12)); }},
        {"condition", 2,
         [](Rng* rng) {
           static const std::vector<std::string> kConds = {
               "heart failure", "heart attack", "pneumonia",
               "surgical infection"};
           return Pick(kConds, rng);
         }},
    };
  } else if (name == "rayyan") {
    cols = {
        {"article_title", 0,
         [](Rng* rng) {
           std::string t;
           for (int i = 0; i < 6; ++i) {
             if (i) t += " ";
             t += Pick(WordPools::TitleWords(), rng);
           }
           return t;
         }},
        {"article_language", 0,
         [](Rng* rng) { return Pick(WordPools::Languages(), rng); }},
        {"journal_title", 1,
         [](Rng* rng) {
           return Pick(WordPools::VenueLongForms(), rng);
         }},
        {"journal_issn", 1,
         [](Rng* rng) {
           return StrFormat("%04d-%04d", rng->UniformInt(10000),
                            rng->UniformInt(10000));
         }},
        {"article_jcreated_at", 0,
         [](Rng* rng) {
           return StrFormat("%d/%d/%02d", 1 + rng->UniformInt(12),
                            1 + rng->UniformInt(28), rng->UniformInt(22));
         }},
        {"article_pagination", 0,
         [](Rng* rng) {
           const int a = 1 + rng->UniformInt(300);
           return StrFormat("%d-%d", a, a + 5 + rng->UniformInt(20));
         }},
        {"author_list", 0,
         [](Rng* rng) {
           return Pick(WordPools::FirstNames(), rng).substr(0, 1) + ". " +
                  Pick(WordPools::LastNames(), rng) + ", " +
                  Pick(WordPools::FirstNames(), rng).substr(0, 1) + ". " +
                  Pick(WordPools::LastNames(), rng);
         }},
        {"volume", 0,
         [](Rng* rng) { return StrFormat("%d", 1 + rng->UniformInt(40)); }},
    };
  } else if (name == "tax") {
    cols = {
        {"f_name", 0, [](Rng* rng) { return Pick(WordPools::FirstNames(), rng); }},
        {"l_name", 0, [](Rng* rng) { return Pick(WordPools::LastNames(), rng); }},
        {"gender", 0, [](Rng* rng) { return rng->Bernoulli(0.5) ? "m" : "f"; }},
        {"area_code", 1,
         [](Rng* rng) { return StrFormat("%d", 200 + rng->UniformInt(24)); }},
        {"phone", 0, [](Rng* rng) { return MakePhoneNumber(rng); }},
        {"zip", 1,
         [](Rng* rng) { return StrFormat("%05d", 20000 + rng->UniformInt(70)); }},
        {"city", 1, [](Rng* rng) { return Pick(WordPools::UsCities(), rng); }},
        {"state", 1, [](Rng* rng) { return Pick(WordPools::UsStates(), rng); }},
        {"marital_status", 0,
         [](Rng* rng) { return rng->Bernoulli(0.5) ? "m" : "s"; }},
        {"has_child", 0,
         [](Rng* rng) { return rng->Bernoulli(0.4) ? "y" : "n"; }},
        {"salary", 0,
         [](Rng* rng) { return StrFormat("%d000", 2 + rng->UniformInt(18)); }},
        {"rate", 0,
         [](Rng* rng) { return StrFormat("%d", 1 + rng->UniformInt(8)); }},
    };
  } else {
    SUDO_CHECK(false && "unknown cleaning dataset");
  }
  return cols;
}

}  // namespace

std::string CorruptValue(const std::string& value, ErrorType type, Rng* rng) {
  std::string out = value;
  switch (type) {
    case ErrorType::kMissingValue:
      out = "";
      break;
    case ErrorType::kTypo:
      out = TypoEdit(value, rng);
      break;
    case ErrorType::kFormatIssue:
      out = FormatCorrupt(value, rng);
      break;
    case ErrorType::kViolatedDep:
      out = value + "x";  // no domain available here; degrade to a typo
      break;
  }
  // The corruption contract is that the value changes; some format
  // corruptions are no-ops on values they do not apply to.
  if (out == value) out = value + "x";
  return out;
}

bool CleaningDataset::IsError(int row, int col) const {
  for (const auto& e : errors) {
    if (e.row == row && e.col == col) return true;
  }
  return false;
}

double CleaningDataset::Coverage() const {
  if (errors.empty()) return 1.0;
  int covered = 0;
  for (const auto& e : errors) {
    const auto& cands =
        candidates[static_cast<size_t>(e.row)][static_cast<size_t>(e.col)];
    const std::string& truth = clean.Cell(e.row, e.col);
    if (std::find(cands.begin(), cands.end(), truth) != cands.end()) {
      ++covered;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(errors.size());
}

double CleaningDataset::AvgCandidates() const {
  int64_t total = 0, cells = 0;
  for (const auto& row : candidates) {
    for (const auto& cell : row) {
      if (!cell.empty()) {
        total += static_cast<int64_t>(cell.size());
        ++cells;
      }
    }
  }
  return cells == 0 ? 0.0 : static_cast<double>(total) /
                            static_cast<double>(cells);
}

CleaningSpec GetCleaningSpec(const std::string& name) {
  CleaningSpec s;
  s.name = name;
  if (name == "beers") {
    s.n_rows = 280;
    s.error_rate = 0.16;
    s.error_types = {ErrorType::kMissingValue, ErrorType::kFormatIssue,
                     ErrorType::kViolatedDep};
    s.coverage = 0.949;
    s.cand_size = 16;
    s.seed = 31;
  } else if (name == "hospital") {
    s.n_rows = 260;
    s.error_rate = 0.03;
    s.error_types = {ErrorType::kTypo, ErrorType::kViolatedDep};
    s.coverage = 0.895;
    s.cand_size = 17;
    s.seed = 32;
  } else if (name == "rayyan") {
    s.n_rows = 240;
    s.error_rate = 0.09;
    s.error_types = {ErrorType::kMissingValue, ErrorType::kTypo,
                     ErrorType::kFormatIssue, ErrorType::kViolatedDep};
    s.coverage = 0.514;
    s.cand_size = 34;
    s.seed = 33;
  } else if (name == "tax") {
    s.n_rows = 360;
    s.error_rate = 0.04;
    s.error_types = {ErrorType::kTypo, ErrorType::kFormatIssue,
                     ErrorType::kViolatedDep};
    s.coverage = 0.927;
    s.cand_size = 60;
    s.seed = 34;
  } else {
    SUDO_CHECK(false && "unknown cleaning dataset");
  }
  return s;
}

const std::vector<std::string>& CleaningDatasetNames() {
  static const std::vector<std::string> kNames = {"beers", "hospital",
                                                  "rayyan", "tax"};
  return kNames;
}

CleaningDataset GenerateCleaning(const CleaningSpec& spec) {
  Rng rng(spec.seed);
  CleaningDataset ds;
  ds.name = spec.name;
  std::vector<SchemaColumn> schema = MakeSchema(spec.name);
  const int n_cols = static_cast<int>(schema.size());

  ds.clean.name = spec.name + "-clean";
  for (const auto& c : schema) ds.clean.attrs.push_back(c.name);

  // FD groups: determinant value -> dependent row fragment, generated once
  // per distinct determinant value so the FD holds in the clean table.
  std::map<int, std::vector<int>> fd_cols;  // group -> column indexes
  for (int c = 0; c < n_cols; ++c) {
    if (schema[static_cast<size_t>(c)].fd_group > 0) {
      fd_cols[schema[static_cast<size_t>(c)].fd_group].push_back(c);
    }
  }
  std::map<std::pair<int, std::string>, std::vector<std::string>> fd_map;

  for (int r = 0; r < spec.n_rows; ++r) {
    Row row(static_cast<size_t>(n_cols));
    for (int c = 0; c < n_cols; ++c) {
      if (schema[static_cast<size_t>(c)].fd_group == 0) {
        row[static_cast<size_t>(c)] = schema[static_cast<size_t>(c)].gen(&rng);
      }
    }
    for (const auto& [group, cols] : fd_cols) {
      // Generate the determinant, then fill dependents from the FD map.
      const int det = cols[0];
      std::string det_val = schema[static_cast<size_t>(det)].gen(&rng);
      auto key = std::make_pair(group, det_val);
      auto it = fd_map.find(key);
      if (it == fd_map.end()) {
        std::vector<std::string> deps;
        for (size_t k = 1; k < cols.size(); ++k) {
          deps.push_back(
              schema[static_cast<size_t>(cols[k])].gen(&rng));
        }
        it = fd_map.emplace(key, std::move(deps)).first;
      }
      row[static_cast<size_t>(det)] = det_val;
      for (size_t k = 1; k < cols.size(); ++k) {
        row[static_cast<size_t>(cols[k])] = it->second[k - 1];
      }
    }
    ds.clean.rows.push_back(std::move(row));
  }

  // Column domains (distinct clean values) for VAD errors and correctors.
  std::vector<std::vector<std::string>> domains(static_cast<size_t>(n_cols));
  for (int c = 0; c < n_cols; ++c) {
    std::set<std::string> seen;
    for (int r = 0; r < spec.n_rows; ++r) seen.insert(ds.clean.Cell(r, c));
    domains[static_cast<size_t>(c)].assign(seen.begin(), seen.end());
  }

  // Inject errors into a copy.
  ds.dirty = ds.clean;
  ds.dirty.name = spec.name + "-dirty";
  const int total_cells = spec.n_rows * n_cols;
  const int n_errors = static_cast<int>(total_cells * spec.error_rate + 0.5);
  std::set<std::pair<int, int>> error_positions;
  while (static_cast<int>(error_positions.size()) < n_errors) {
    const int r = rng.UniformInt(spec.n_rows);
    const int c = rng.UniformInt(n_cols);
    if (ds.clean.Cell(r, c).empty()) continue;
    if (!error_positions.insert({r, c}).second) continue;
    const ErrorType type = spec.error_types[static_cast<size_t>(
        rng.UniformInt(static_cast<int>(spec.error_types.size())))];
    std::string dirty_val;
    const std::string& truth = ds.clean.Cell(r, c);
    switch (type) {
      case ErrorType::kMissingValue:
        dirty_val = "";
        break;
      case ErrorType::kTypo:
        dirty_val = TypoEdit(truth, &rng);
        break;
      case ErrorType::kFormatIssue:
        dirty_val = FormatCorrupt(truth, &rng);
        break;
      case ErrorType::kViolatedDep: {
        const auto& dom = domains[static_cast<size_t>(c)];
        std::string other = truth;
        for (int tries = 0; tries < 10 && other == truth; ++tries) {
          other = Pick(dom, &rng);
        }
        dirty_val = other;
        break;
      }
    }
    if (dirty_val == truth) dirty_val = truth + "x";
    ds.dirty.SetCell(r, c, dirty_val);
    ds.errors.push_back({r, c, type});
  }

  // Baran-style candidate-correction ensemble. All cells receive a set.
  // Value-frequency tables per column (over the *dirty* table, as the real
  // correctors only see dirty data).
  std::vector<std::unordered_map<std::string, int>> freq(
      static_cast<size_t>(n_cols));
  for (int r = 0; r < spec.n_rows; ++r) {
    for (int c = 0; c < n_cols; ++c) {
      ++freq[static_cast<size_t>(c)][ds.dirty.Cell(r, c)];
    }
  }
  // FD majority maps from the dirty table.
  std::map<std::pair<int, std::string>,
           std::unordered_map<std::string, int>>
      fd_votes;  // (dependent col, det value) -> dependent value votes
  for (const auto& [group, cols] : fd_cols) {
    (void)group;
    const int det = cols[0];
    for (int r = 0; r < spec.n_rows; ++r) {
      for (size_t k = 1; k < cols.size(); ++k) {
        fd_votes[{cols[static_cast<size_t>(k)], ds.dirty.Cell(r, det)}]
                [ds.dirty.Cell(r, static_cast<int>(cols[k]))]++;
      }
    }
  }

  ds.candidates.assign(
      static_cast<size_t>(spec.n_rows),
      std::vector<std::vector<std::string>>(static_cast<size_t>(n_cols)));
  for (int r = 0; r < spec.n_rows; ++r) {
    for (int c = 0; c < n_cols; ++c) {
      const std::string& cur = ds.dirty.Cell(r, c);
      std::vector<std::string> cands;
      std::set<std::string> seen;
      auto add = [&](const std::string& v) {
        if (v.empty() || v == cur) return;
        if (seen.insert(v).second) cands.push_back(v);
      };
      // (1) FD-lookup corrector.
      for (const auto& [group, cols] : fd_cols) {
        (void)group;
        for (size_t k = 1; k < cols.size(); ++k) {
          if (cols[k] != c) continue;
          auto it = fd_votes.find({c, ds.dirty.Cell(r, cols[0])});
          if (it != fd_votes.end()) {
            int best_votes = -1;
            std::string best;
            for (const auto& [v, n] : it->second) {
              if (n > best_votes) {
                best_votes = n;
                best = v;
              }
            }
            add(best);
          }
        }
      }
      // (2) typo fixer: nearest domain values by edit distance.
      if (!cur.empty()) {
        std::vector<std::pair<int, std::string>> near;
        for (const auto& v : domains[static_cast<size_t>(c)]) {
          const int d = EditDistance(cur, v);
          if (d > 0 && d <= 2) near.emplace_back(d, v);
        }
        std::sort(near.begin(), near.end());
        for (size_t k = 0; k < near.size() && k < 4; ++k) add(near[k].second);
      }
      // (3) format normalizers.
      if (!cur.empty()) {
        std::string stripped;
        for (char ch : cur) {
          if (ch != '%' ) stripped.push_back(ch);
        }
        if (EndsWith(stripped, " ounce")) {
          stripped = stripped.substr(0, stripped.size() - 6);
        }
        if (EndsWith(stripped, ".0")) {
          stripped = stripped.substr(0, stripped.size() - 2);
        }
        add(ToLower(Trim(stripped)));
      }
      // (4) histogram corrector: frequent column values.
      {
        std::vector<std::pair<int, std::string>> top;
        for (const auto& [v, n] : freq[static_cast<size_t>(c)]) {
          top.emplace_back(-n, v);
        }
        std::sort(top.begin(), top.end());
        for (size_t k = 0; k < top.size() && k < 5; ++k) add(top[k].second);
      }
      // (5) simulated external-tool coverage: the ground truth enters the
      // set with the configured probability (models the fraction of error
      // types the real tool ensemble can produce, Table III).
      const std::string& truth = ds.clean.Cell(r, c);
      if (truth != cur && rng.Bernoulli(spec.coverage)) add(truth);
      if (truth != cur && !rng.Bernoulli(spec.coverage)) {
        // Explicitly drop the truth for uncovered errors.
        cands.erase(std::remove(cands.begin(), cands.end(), truth),
                    cands.end());
        seen.erase(truth);
      }
      // (6) domain fillers up to the configured candidate-set size.
      const auto& dom = domains[static_cast<size_t>(c)];
      int guard = 0;
      while (static_cast<int>(cands.size()) < spec.cand_size &&
             guard++ < spec.cand_size * 20 &&
             static_cast<int>(seen.size()) < static_cast<int>(dom.size())) {
        add(Pick(dom, &rng));
      }
      ds.candidates[static_cast<size_t>(r)][static_cast<size_t>(c)] =
          std::move(cands);
    }
  }
  return ds;
}

}  // namespace sudowoodo::data
